package ilp

import (
	"math"
	"sort"
	"time"
)

// Solution is the outcome of Solve or Greedy.
type Solution struct {
	// Chosen are indexes into Problem.Cands.
	Chosen []int
	// Objective is the total expected workload runtime of the design.
	Objective float64
	// Size is the total space used.
	Size int64
	// Proven reports whether optimality was proven (false when the node or
	// time limit cut the search short).
	Proven bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// PerQuery[q] is the index of the chosen candidate serving q, or -1
	// when q runs on the base design.
	PerQuery []int
}

// SolveOptions tunes the exact solver.
type SolveOptions struct {
	// MaxNodes caps search nodes; 0 means 5,000,000.
	MaxNodes int
	// TimeLimit caps wall time; 0 means none.
	TimeLimit time.Duration
}

// Solve finds the optimal candidate subset by depth-first branch-and-bound.
//
// Ordering: candidates are considered in decreasing benefit density
// (workload-runtime saved per byte), so good incumbents appear early.
// Bound: at a node, the optimistic objective lets every query use the best
// of {already chosen} ∪ {undecided candidates that individually fit the
// remaining budget}. That relaxes both the budget (only per-candidate
// feasibility) and the fact-group rule, so it never exceeds the true
// optimum below the node — an admissible bound.
func Solve(p *Problem, opts SolveOptions) *Solution {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	order := orderByDensity(p)
	nQ := p.numQueries()

	// Incumbent from greedy.
	inc := Greedy(p, 2, len(p.Cands))
	bestObj := inc.Objective
	bestChosen := append([]int(nil), inc.Chosen...)

	// bestTimes[q]: current best time for q from chosen candidates.
	bestTimes := make([]float64, nQ)
	copy(bestTimes, p.Base)

	// For the bound: per query, candidate indexes sorted by time ascending.
	perQ := sortedPerQuery(p)

	s := &solver{
		p: p, order: order, perQ: perQ,
		maxNodes: maxNodes, deadline: deadline,
		bestObj: bestObj, bestChosen: bestChosen,
		proven: true,
	}
	s.decided = make([]int8, len(p.Cands))
	// Flatten the hot per-node lookups: per-query candidate times aligned
	// with perQ (the bound scans them contiguously instead of chasing each
	// candidate's Times slice), plus weights and sizes as dense slices.
	s.perQTimes = make([][]float64, nQ)
	for q := range perQ {
		ts := make([]float64, len(perQ[q]))
		for r, m := range perQ[q] {
			ts[r] = p.Cands[m].Times[q]
		}
		s.perQTimes[q] = ts
	}
	s.weights = make([]float64, nQ)
	for q := 0; q < nQ; q++ {
		s.weights[q] = p.weight(q)
	}
	s.sizes = make([]int64, len(p.Cands))
	for m := range p.Cands {
		s.sizes[m] = p.Cands[m].Size
	}
	// Per-depth bound scratch: depth d's buffers stay valid while its
	// subtree runs, so an exclude child can reuse its parent's per-query
	// picks and contributions instead of rescanning every query.
	s.pickBuf = make([][]int32, len(p.Cands)+1)
	s.contribBuf = make([][]float64, len(p.Cands)+1)
	for d := range s.pickBuf {
		s.pickBuf[d] = make([]int32, nQ)
		s.contribBuf[d] = make([]float64, nQ)
	}
	factUsed := map[int]bool{}
	s.dfs(0, 0, bestTimes, s.objectiveOf(bestTimes), -1, nil, factUsed)

	sol := &Solution{
		Chosen:    s.bestChosen,
		Objective: s.bestObj,
		Size:      p.SizeOf(s.bestChosen),
		Proven:    s.proven,
		Nodes:     s.nodes,
	}
	sol.PerQuery = perQueryRouting(p, sol.Chosen)
	return sol
}

type solver struct {
	p        *Problem
	order    []int
	perQ     [][]int
	decided  []int8 // 0 undecided, 1 included, 2 excluded
	maxNodes int
	deadline time.Time

	// perQTimes[q][r] is the runtime of candidate perQ[q][r] on q; weights
	// and sizes are the dense forms of Problem.weight and Candidate.Size.
	perQTimes [][]float64
	weights   []float64
	sizes     []int64
	// pickBuf[d][q] / contribBuf[d][q] hold, for the node at depth d, the
	// candidate the bound let q use (-1 = none) and q's weighted bound
	// contribution.
	pickBuf    [][]int32
	contribBuf [][]float64

	nodes      int
	bestObj    float64
	bestChosen []int
	proven     bool
}

// objectiveOf sums the weighted per-query times in query order (the one
// summation order used everywhere, so repeated evaluations are bit-equal).
func (s *solver) objectiveOf(bestTimes []float64) float64 {
	cur := 0.0
	for q, t := range bestTimes {
		cur += s.weights[q] * t
	}
	return cur
}

// dfs explores decisions for order[pos:]. bestTimes reflects included
// candidates with cur their weighted objective; usedSize their total size;
// chosen their indexes. cur is recomputed only when the chosen set changes
// (the exclude branch reuses the parent's value, which is identical).
// excluded names the candidate the parent just excluded (-1 after an
// include or at the root), enabling the incremental bound.
func (s *solver) dfs(pos int, usedSize int64, bestTimes []float64, cur float64, excluded int, chosen []int, factUsed map[int]bool) {
	s.nodes++
	if s.nodes > s.maxNodes || (!s.deadline.IsZero() && s.nodes%1024 == 0 && time.Now().After(s.deadline)) {
		s.proven = false
		return
	}
	if cur < s.bestObj-1e-12 {
		s.bestObj = cur
		s.bestChosen = append([]int(nil), chosen...)
	}
	if pos >= len(s.order) {
		return
	}
	// Admissible bound: full scan after an include (times and budget both
	// changed), an incremental update over the parent's per-query picks
	// after an exclude (only queries whose pick was just excluded can
	// change — both paths produce bit-identical totals).
	var b float64
	if excluded < 0 || pos == 0 {
		b = s.boundFull(bestTimes, usedSize, pos)
	} else {
		b = s.boundExcluded(bestTimes, usedSize, pos, excluded)
	}
	if b >= s.bestObj-1e-12 {
		return
	}
	m := s.order[pos]
	cand := &s.p.Cands[m]
	fits := usedSize+cand.Size <= s.p.Budget
	factOK := cand.FactGroup <= 0 || !factUsed[cand.FactGroup]

	if fits && factOK {
		// Include m.
		s.decided[m] = 1
		newTimes := make([]float64, len(bestTimes))
		improved := false
		for q := range bestTimes {
			t := cand.Times[q]
			if t < bestTimes[q] {
				newTimes[q] = t
				improved = true
			} else {
				newTimes[q] = bestTimes[q]
			}
		}
		if improved {
			if cand.FactGroup > 0 {
				factUsed[cand.FactGroup] = true
			}
			s.dfs(pos+1, usedSize+cand.Size, newTimes, s.objectiveOf(newTimes), -1, append(chosen, m), factUsed)
			if cand.FactGroup > 0 {
				delete(factUsed, cand.FactGroup)
			}
		}
		s.decided[m] = 0
	}
	// Exclude m.
	s.decided[m] = 2
	s.dfs(pos+1, usedSize, bestTimes, cur, m, chosen, factUsed)
	s.decided[m] = 0
}

// boundQuery scans query q's ascending candidate list for the first
// undecided-or-included entry that fits the remaining budget and improves
// on cur, returning the optimistic time and the candidate used (-1: none).
func (s *solver) boundQuery(q int, cur float64, remaining int64) (float64, int32) {
	best, pick := cur, int32(-1)
	ts := s.perQTimes[q]
	for r, m := range s.perQ[q] {
		t := ts[r]
		if t >= best {
			break // sorted ascending; nothing better follows
		}
		if s.decided[m] == 2 || s.sizes[m] > remaining {
			continue
		}
		best, pick = t, int32(m)
		break
	}
	return best, pick
}

// boundFull computes the optimistic objective at depth pos from scratch,
// recording per-query picks and contributions for incremental children.
func (s *solver) boundFull(bestTimes []float64, usedSize int64, pos int) float64 {
	remaining := s.p.Budget - usedSize
	picks, contrib := s.pickBuf[pos], s.contribBuf[pos]
	total := 0.0
	for q, cur := range bestTimes {
		best, pick := s.boundQuery(q, cur, remaining)
		c := s.weights[q] * best
		picks[q], contrib[q] = pick, c
		total += c
	}
	return total
}

// boundExcluded updates the parent's bound after excluding candidate ex:
// with times and budget unchanged, a query's optimistic pick can only
// change if it was ex. Unaffected contributions are copied verbatim and the
// total is re-summed in query order, so the result equals boundFull's bit
// for bit.
func (s *solver) boundExcluded(bestTimes []float64, usedSize int64, pos, ex int) float64 {
	remaining := s.p.Budget - usedSize
	parentPicks, parentContrib := s.pickBuf[pos-1], s.contribBuf[pos-1]
	picks, contrib := s.pickBuf[pos], s.contribBuf[pos]
	copy(picks, parentPicks)
	copy(contrib, parentContrib)
	ex32 := int32(ex)
	total := 0.0
	for q := range contrib {
		if picks[q] == ex32 {
			best, pick := s.boundQuery(q, bestTimes[q], remaining)
			picks[q], contrib[q] = pick, s.weights[q]*best
		}
		total += contrib[q]
	}
	return total
}

// orderByDensity sorts candidate indexes by benefit density descending.
func orderByDensity(p *Problem) []int {
	type scored struct {
		idx     int
		density float64
	}
	sc := make([]scored, len(p.Cands))
	for m := range p.Cands {
		benefit := 0.0
		for q := 0; q < p.numQueries(); q++ {
			if t := p.Cands[m].Times[q]; t < p.Base[q] {
				benefit += p.weight(q) * (p.Base[q] - t)
			}
		}
		size := float64(p.Cands[m].Size)
		if size < 1 {
			size = 1
		}
		sc[m] = scored{m, benefit / size}
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].density > sc[j].density })
	out := make([]int, len(sc))
	for i, s := range sc {
		out[i] = s.idx
	}
	return out
}

// sortedPerQuery builds, per query, candidate indexes sorted by that
// query's runtime ascending, excluding infeasible pairs — the paper's
// p_{q,r} ordering.
func sortedPerQuery(p *Problem) [][]int {
	nQ := p.numQueries()
	out := make([][]int, nQ)
	for q := 0; q < nQ; q++ {
		var idx []int
		for m := range p.Cands {
			if !math.IsInf(p.Cands[m].Times[q], 1) {
				idx = append(idx, m)
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return p.Cands[idx[a]].Times[q] < p.Cands[idx[b]].Times[q]
		})
		out[q] = idx
	}
	return out
}

// perQueryRouting maps each query to the chosen candidate serving it.
func perQueryRouting(p *Problem, chosen []int) []int {
	nQ := p.numQueries()
	out := make([]int, nQ)
	for q := 0; q < nQ; q++ {
		out[q] = -1
		best := p.Base[q]
		for _, m := range chosen {
			if t := p.Cands[m].Times[q]; t < best {
				best = t
				out[q] = m
			}
		}
	}
	return out
}

// Greedy implements Greedy(m,k) (Chaudhuri & Narasayya, VLDB 1997; §5.2):
// exhaustively pick the best feasible seed set of at most seedM candidates,
// then greedily add the candidate with the largest runtime improvement
// until the budget is exhausted or k candidates are chosen.
func Greedy(p *Problem, seedM, k int) *Solution {
	if k <= 0 {
		k = len(p.Cands)
	}
	bestSeed := []int{}
	bestObj := p.Objective(nil)
	// Exhaustive seeds of size 1..seedM (the paper recommends m=2).
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			if p.Feasible(cur) {
				if obj := p.Objective(cur); obj < bestObj-1e-12 {
					bestObj = obj
					bestSeed = append([]int(nil), cur...)
				}
			} else {
				return
			}
		}
		if len(cur) == seedM {
			return
		}
		for m := start; m < len(p.Cands); m++ {
			rec(m+1, append(cur, m))
		}
	}
	rec(0, nil)

	chosen := append([]int(nil), bestSeed...)
	obj := p.Objective(chosen)
	for len(chosen) < k {
		bestM, bestNew := -1, obj
		for m := range p.Cands {
			if contains(chosen, m) {
				continue
			}
			trial := append(append([]int(nil), chosen...), m)
			if !p.Feasible(trial) {
				continue
			}
			if o := p.Objective(trial); o < bestNew-1e-12 {
				bestNew = o
				bestM = m
			}
		}
		if bestM < 0 {
			break
		}
		chosen = append(chosen, bestM)
		obj = bestNew
	}
	sol := &Solution{Chosen: chosen, Objective: obj, Size: p.SizeOf(chosen), Proven: false}
	sol.PerQuery = perQueryRouting(p, chosen)
	return sol
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
