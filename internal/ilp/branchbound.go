package ilp

import (
	"math"
	"sort"
	"time"
)

// Solution is the outcome of Solve or Greedy.
type Solution struct {
	// Chosen are indexes into Problem.Cands, in discovery order
	// (preprocessing-fixed candidates first, then the incumbent's or the
	// search's inclusion order).
	Chosen []int
	// Objective is the total expected workload runtime of the design.
	Objective float64
	// Size is the total space used.
	Size int64
	// Proven reports whether optimality was proven (false when the node or
	// time limit cut the search short).
	Proven bool
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Pruned counts nodes cut by the admissible bound; IncumbentUpdates
	// counts strict improvements adopted during the search (0 when the
	// greedy/warm incumbent was already optimal). Both are search-shape
	// diagnostics exported to /metrics; in parallel mode they sum across
	// subtrees the same way Nodes does.
	Pruned           int
	IncumbentUpdates int
	// PerQuery[q] is the index of the chosen candidate serving q, or -1
	// when q runs on the base design.
	PerQuery []int
}

// SolveOptions tunes the exact solver.
type SolveOptions struct {
	// MaxNodes caps search nodes; 0 means 5,000,000, negative means
	// unlimited (the CORADD_SOLVER_MAXNODES escape hatch the experiment
	// drivers plumb through for off-runner proven solves). In parallel
	// mode the cap applies per subtree, so the total may exceed it.
	MaxNodes int
	// TimeLimit caps wall time; 0 means none. A triggered time limit is the
	// one intentionally nondeterministic cutoff (Proven reports it).
	TimeLimit time.Duration
	// Interrupt, when non-nil, is polled once per explored node with the
	// current node count and aborts the search (keeping the incumbent,
	// Proven=false) when it returns true — the deterministic analogue of
	// TimeLimit. internal/fault injects solve deadlines through it: a
	// node-count predicate fires at the identical node on every replay,
	// where a wall-clock limit would not. In parallel mode the predicate
	// sees per-subtree node counts (matching MaxNodes semantics) and must
	// be safe for concurrent calls.
	Interrupt func(nodes int) bool
	// Workers selects deterministic parallel subtree search when > 1; 0 or
	// 1 keeps the sequential depth-first search (the 1-CPU default). For a
	// fixed (problem, Workers) pair results are bit-identical run to run,
	// and Chosen/Objective match sequential mode.
	Workers int
	// WarmStart seeds the search with a known-good solution: indexes into
	// Problem.Cands (an incumbent design's objects matched into this
	// problem, the adaptive-redesign entry point). The subset is clipped
	// to feasibility, mapped through preprocessing, optionally polished,
	// and adopted as the initial incumbent when it beats the greedy one —
	// so a warm solve starts with a bound at least as tight as a cold
	// solve's and explores no more nodes. Infeasible or unknown entries
	// are skipped; an empty slice is a cold solve.
	WarmStart []int
	// NoPreprocess disables the budget-aware reduction pass (dominance.go).
	NoPreprocess bool
	// NoLagrangian disables the Lagrangian budget bound (lagrange.go).
	NoLagrangian bool
	// NoPolish disables the local-search polish of the greedy incumbent.
	NoPolish bool
	// Progress, when non-nil, receives deterministic search snapshots:
	// one "root" sample before the first node, a "search" sample every
	// ProgressEvery nodes, one per incumbent improvement and per merged
	// parallel subtree, and a "final" sample. Emission is keyed to node
	// ordinals only, so the sequence is bit-identical run to run at a
	// fixed Workers setting, and a nil sink changes nothing about the
	// search (see ProgressSample). Samples arrive on the calling
	// goroutine — worker tasks never emit.
	Progress func(ProgressSample)
	// ProgressEvery is the "search"-sample node cadence; 0 means
	// DefaultProgressEvery. Ignored without Progress.
	ProgressEvery int
}

// IsZero reports whether every option is at its default (the pre-warm-
// start struct equality check against SolveOptions{}, which a slice field
// no longer permits).
func (o *SolveOptions) IsZero() bool {
	return o.MaxNodes == 0 && o.TimeLimit == 0 && o.Workers == 0 && o.Interrupt == nil &&
		len(o.WarmStart) == 0 && !o.NoPreprocess && !o.NoLagrangian && !o.NoPolish &&
		o.Progress == nil && o.ProgressEvery == 0
}

// Solve finds the optimal candidate subset by depth-first branch-and-bound.
//
// Pipeline: a preprocessing pass first shrinks the problem — candidates
// that cannot fit, help no query, or are dominated are removed, and
// candidates that always fit are fixed (dominance.go). The search then
// runs on the reduced problem and the solution is lifted back to original
// candidate indexes.
//
// Ordering: candidates are considered in decreasing benefit density
// (workload-runtime saved per byte), so good incumbents appear early.
// Bound: at a node, the larger of two admissible bounds. The greedy bound
// lets every query use the best of {already chosen} ∪ {undecided
// candidates that individually fit the remaining budget}, relaxing the
// budget to per-candidate feasibility and dropping the fact-group rule.
// The Lagrangian bound dualizes the space budget with a root-optimized
// multiplier (lagrange.go) and dominates the greedy bound when the budget
// constraint is what binds. Both are maintained incrementally along
// exclude chains, bit-identically to full recomputation.
func Solve(p *Problem, opts SolveOptions) *Solution {
	red := reduce(p, opts)
	rp := red.p

	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 5_000_000
	} else if maxNodes < 0 {
		maxNodes = math.MaxInt
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	order := orderByDensity(rp)

	// Incumbent from greedy on the reduced problem, optionally polished by
	// local search — the cheapest node-count lever the search has.
	inc := Greedy(rp, 2, len(rp.Cands))
	incChosen, incObj := append([]int(nil), inc.Chosen...), inc.Objective
	if !opts.NoPolish {
		incChosen, incObj = polish(rp, incChosen, incObj)
	}
	// A warm start can only tighten the initial incumbent: the better of
	// the (polished) greedy solution and the (polished) warm subset seeds
	// the search, so warm-solve pruning dominates cold-solve pruning.
	if len(opts.WarmStart) > 0 {
		if wChosen, wObj, ok := red.warmIncumbent(opts.WarmStart); ok {
			if !opts.NoPolish {
				wChosen, wObj = polish(rp, wChosen, wObj)
			}
			if wObj < incObj {
				incChosen, incObj = wChosen, wObj
			}
		}
	}

	s := newSolver(rp, order, maxNodes, deadline)
	s.interrupt = opts.Interrupt
	s.bestObj = incObj
	s.bestChosen = incChosen
	if !opts.NoLagrangian {
		s.lag = newLagrangian(rp, s, incObj)
	}
	if opts.Progress != nil {
		// Arm the sink. The root bound is the greedy relaxation at the
		// empty prefix — computed once (constant across the solve's
		// samples) via boundFull, never through bound(), whose lagWins
		// accounting would perturb the deterministic Lagrangian-disarm
		// decision and break byte-identity with an unobserved solve.
		s.progress = opts.Progress
		s.progressEvery = opts.ProgressEvery
		if s.progressEvery <= 0 {
			s.progressEvery = DefaultProgressEvery
		}
		rootTimes := make([]float64, s.nQ)
		copy(rootTimes, rp.Base)
		s.row(0)
		s.rootBound = s.boundFull(rootTimes, 0, 0)
		s.emit("root", -1)
	}

	if opts.Workers > 1 {
		s.solveParallel(opts.Workers)
	} else {
		bestTimes := make([]float64, s.nQ)
		copy(bestTimes, rp.Base)
		s.dfs(0, 0, bestTimes, s.objectiveOf(bestTimes), -1, nil, map[int]bool{})
	}
	s.emit("final", -1)

	return red.lift(p, s)
}

// solver carries the precomputed tables (shared, read-only after
// construction) and the mutable search state of one depth-first search.
// Parallel subtree search clones the mutable part per subtree (parallel.go).
type solver struct {
	p         *Problem
	order     []int
	perQ      [][]int
	nQ        int
	maxNodes  int
	deadline  time.Time
	interrupt func(nodes int) bool

	// perQTimes[q][r] is the runtime of candidate perQ[q][r] on q; weights
	// and sizes are the dense forms of Problem.weight and Candidate.Size.
	perQTimes [][]float64
	weights   []float64
	sizes     []int64
	// lag is the Lagrangian budget bound, nil when disabled or when the
	// root multiplier degenerates to zero (identical to the greedy bound).
	lag *lagrangian

	// Mutable search state.
	decided []int8 // 0 undecided, 1 included, 2 excluded
	// pickBuf[d][q] / contribBuf[d][q] hold, for the node at depth d, the
	// candidate the greedy bound let q use (-1 = none) and q's weighted
	// bound contribution; lagPickBuf/lagContribBuf are the Lagrangian
	// bound's equivalents (lagrange.go). Rows are allocated on first use:
	// shallow searches (the common case once the bound closes at the
	// root) never touch most depths.
	pickBuf       [][]int32
	contribBuf    [][]float64
	lagPickBuf    [][]int32
	lagContribBuf [][]float64
	// timesBuf[d] backs the include branch's new times vector at depth d,
	// so the hot path allocates each depth's buffer once per search.
	timesBuf [][]float64

	nodes      int
	pruned     int
	incumbents int
	bestObj    float64
	bestChosen []int
	proven     bool
	// progress/progressEvery/rootBound back the optional progress sink
	// (progress.go). Tasks never inherit progress: only the
	// orchestrating goroutine emits, keeping samples ordered and the
	// sink free of synchronization requirements.
	progress      func(ProgressSample)
	progressEvery int
	rootBound     float64
	// lagWins counts nodes the Lagrangian bound pruned that the greedy
	// bound alone would not have; at the lagProbeNodes checkpoint a
	// solver that saw too few wins disarms the Lagrangian for the rest of
	// its search (the checkpoint is a fixed node ordinal, so the decision
	// is deterministic).
	lagWins int

	// frontier/leaves drive the parallel decomposition (parallel.go): when
	// frontier ≥ 0, dfs snapshots state at that depth instead of
	// descending.
	frontier int
	leaves   []subtree
}

// newSolver precomputes the dense lookup tables for p.
func newSolver(p *Problem, order []int, maxNodes int, deadline time.Time) *solver {
	nQ := p.numQueries()
	s := &solver{
		p: p, order: order, nQ: nQ,
		maxNodes: maxNodes, deadline: deadline,
		proven: true, frontier: -1,
	}
	s.perQ = sortedPerQuery(p)
	s.perQTimes = make([][]float64, nQ)
	for q := range s.perQ {
		ts := make([]float64, len(s.perQ[q]))
		for r, m := range s.perQ[q] {
			ts[r] = p.Cands[m].Times[q]
		}
		s.perQTimes[q] = ts
	}
	s.weights = make([]float64, nQ)
	for q := 0; q < nQ; q++ {
		s.weights[q] = p.weight(q)
	}
	s.sizes = make([]int64, len(p.Cands))
	for m := range p.Cands {
		s.sizes[m] = p.Cands[m].Size
	}
	s.decided = make([]int8, len(p.Cands))
	s.pickBuf = make([][]int32, len(p.Cands)+1)
	s.contribBuf = make([][]float64, len(p.Cands)+1)
	s.lagPickBuf = make([][]int32, len(p.Cands)+1)
	s.lagContribBuf = make([][]float64, len(p.Cands)+1)
	s.timesBuf = make([][]float64, len(p.Cands)+1)
	return s
}

// lagProbeNodes is the node ordinal at which a solver reviews whether the
// Lagrangian bound is earning its per-node cost.
const lagProbeNodes = 16384

// timesRow returns the include branch's times buffer for depth d.
func (s *solver) timesRow(d int) []float64 {
	if s.timesBuf[d] == nil {
		s.timesBuf[d] = make([]float64, s.nQ)
	}
	return s.timesBuf[d]
}

// row ensures the per-depth scratch buffers for depth d exist.
func (s *solver) row(d int) {
	if s.pickBuf[d] == nil {
		s.pickBuf[d] = make([]int32, s.nQ)
		s.contribBuf[d] = make([]float64, s.nQ)
	}
	if s.lag != nil && s.lagPickBuf[d] == nil {
		s.lagPickBuf[d] = make([]int32, s.nQ)
		s.lagContribBuf[d] = make([]float64, s.nQ)
	}
}

// objectiveOf sums the weighted per-query times in query order (the one
// summation order used everywhere, so repeated evaluations are bit-equal).
func (s *solver) objectiveOf(bestTimes []float64) float64 {
	cur := 0.0
	for q, t := range bestTimes {
		cur += s.weights[q] * t
	}
	return cur
}

// dfs explores decisions for order[pos:]. bestTimes reflects included
// candidates with cur their weighted objective; usedSize their total size;
// chosen their indexes. cur is recomputed only when the chosen set changes
// (the exclude branch reuses the parent's value, which is identical).
// excluded names the candidate the parent just excluded (-1 after an
// include or at a subtree root), enabling the incremental bound.
func (s *solver) dfs(pos int, usedSize int64, bestTimes []float64, cur float64, excluded int, chosen []int, factUsed map[int]bool) {
	if pos == s.frontier {
		fu := make(map[int]bool, len(factUsed))
		for g := range factUsed {
			fu[g] = true
		}
		s.leaves = append(s.leaves, subtree{
			usedSize:  usedSize,
			bestTimes: append([]float64(nil), bestTimes...),
			cur:       cur,
			chosen:    append([]int(nil), chosen...),
			factUsed:  fu,
			decided:   append([]int8(nil), s.decided...),
		})
		return
	}
	s.nodes++
	if s.progress != nil && s.nodes%s.progressEvery == 0 {
		s.emit("search", -1)
	}
	if s.nodes > s.maxNodes || (!s.deadline.IsZero() && s.nodes%1024 == 0 && time.Now().After(s.deadline)) ||
		(s.interrupt != nil && s.interrupt(s.nodes)) {
		s.proven = false
		return
	}
	if s.lag != nil && s.nodes == lagProbeNodes && s.lagWins*100 < s.nodes {
		s.lag = nil // pruning <1% of nodes: not worth its per-node cost
	}
	if cur < s.bestObj-1e-12 {
		s.bestObj = cur
		s.bestChosen = append([]int(nil), chosen...)
		s.incumbents++
		s.emit("incumbent", -1)
	}
	if pos >= len(s.order) {
		return
	}
	if s.bound(pos, usedSize, bestTimes, excluded) >= s.bestObj-1e-12 {
		s.pruned++
		return
	}
	m := s.order[pos]
	cand := &s.p.Cands[m]
	fits := usedSize+cand.Size <= s.p.Budget
	factOK := cand.FactGroup <= 0 || !factUsed[cand.FactGroup]

	if fits && factOK {
		// Include m. The new times and their objective are built in one
		// pass — the sum visits queries in the same order as objectiveOf,
		// so the value is bit-identical.
		s.decided[m] = 1
		newTimes := s.timesRow(pos + 1)
		improved := false
		newObj := 0.0
		for q, t := range bestTimes {
			if tc := cand.Times[q]; tc < t {
				t = tc
				improved = true
			}
			newTimes[q] = t
			newObj += s.weights[q] * t
		}
		if improved {
			if cand.FactGroup > 0 {
				factUsed[cand.FactGroup] = true
			}
			s.dfs(pos+1, usedSize+cand.Size, newTimes, newObj, -1, append(chosen, m), factUsed)
			if cand.FactGroup > 0 {
				delete(factUsed, cand.FactGroup)
			}
		}
		s.decided[m] = 0
	}
	// Exclude m.
	s.decided[m] = 2
	s.dfs(pos+1, usedSize, bestTimes, cur, m, chosen, factUsed)
	s.decided[m] = 0
}

// bound computes the node's admissible bound: the greedy relaxation, or
// the larger of it and the Lagrangian bound when the latter is armed. A
// full scan runs after an include (times and budget both changed); an
// incremental update over the parent's per-query picks runs after an
// exclude (only queries whose pick was just excluded can change) — both
// paths produce bit-identical totals, for each bound.
func (s *solver) bound(pos int, usedSize int64, bestTimes []float64, excluded int) float64 {
	s.row(pos)
	var b float64
	if excluded < 0 || pos == 0 {
		b = s.boundFull(bestTimes, usedSize, pos)
		if s.lag != nil {
			if lb := s.lagBoundFull(bestTimes, usedSize, pos); lb > b {
				if lb >= s.bestObj-1e-12 && b < s.bestObj-1e-12 {
					s.lagWins++ // a prune the greedy bound alone would miss
				}
				b = lb
			}
		}
	} else {
		b = s.boundExcluded(bestTimes, usedSize, pos, excluded)
		if s.lag != nil {
			if lb := s.lagBoundExcluded(bestTimes, usedSize, pos, excluded); lb > b {
				if lb >= s.bestObj-1e-12 && b < s.bestObj-1e-12 {
					s.lagWins++
				}
				b = lb
			}
		}
	}
	return b
}

// boundQuery scans query q's ascending candidate list for the first
// undecided-or-included entry that fits the remaining budget and improves
// on cur, returning the optimistic time and the candidate used (-1: none).
func (s *solver) boundQuery(q int, cur float64, remaining int64) (float64, int32) {
	best, pick := cur, int32(-1)
	ts := s.perQTimes[q]
	for r, m := range s.perQ[q] {
		t := ts[r]
		if t >= best {
			break // sorted ascending; nothing better follows
		}
		if s.decided[m] == 2 || s.sizes[m] > remaining {
			continue
		}
		best, pick = t, int32(m)
		break
	}
	return best, pick
}

// boundFull computes the optimistic objective at depth pos from scratch,
// recording per-query picks and contributions for incremental children.
func (s *solver) boundFull(bestTimes []float64, usedSize int64, pos int) float64 {
	remaining := s.p.Budget - usedSize
	picks, contrib := s.pickBuf[pos], s.contribBuf[pos]
	total := 0.0
	for q, cur := range bestTimes {
		best, pick := s.boundQuery(q, cur, remaining)
		c := s.weights[q] * best
		picks[q], contrib[q] = pick, c
		total += c
	}
	return total
}

// boundExcluded updates the parent's bound after excluding candidate ex:
// with times and budget unchanged, a query's optimistic pick can only
// change if it was ex. Unaffected contributions are copied verbatim and the
// total is re-summed in query order, so the result equals boundFull's bit
// for bit.
func (s *solver) boundExcluded(bestTimes []float64, usedSize int64, pos, ex int) float64 {
	remaining := s.p.Budget - usedSize
	parentPicks, parentContrib := s.pickBuf[pos-1], s.contribBuf[pos-1]
	picks, contrib := s.pickBuf[pos], s.contribBuf[pos]
	copy(picks, parentPicks)
	copy(contrib, parentContrib)
	ex32 := int32(ex)
	total := 0.0
	for q := range contrib {
		if picks[q] == ex32 {
			best, pick := s.boundQuery(q, bestTimes[q], remaining)
			picks[q], contrib[q] = pick, s.weights[q]*best
		}
		total += contrib[q]
	}
	return total
}

// orderByDensity sorts candidate indexes by benefit density descending.
func orderByDensity(p *Problem) []int {
	type scored struct {
		idx     int
		density float64
	}
	sc := make([]scored, len(p.Cands))
	for m := range p.Cands {
		benefit := 0.0
		for q := 0; q < p.numQueries(); q++ {
			if t := p.Cands[m].Times[q]; t < p.Base[q] {
				benefit += p.weight(q) * (p.Base[q] - t)
			}
		}
		size := float64(p.Cands[m].Size)
		if size < 1 {
			size = 1
		}
		sc[m] = scored{m, benefit / size}
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].density > sc[j].density })
	out := make([]int, len(sc))
	for i, s := range sc {
		out[i] = s.idx
	}
	return out
}

// sortedPerQuery builds, per query, candidate indexes sorted by that
// query's runtime ascending, excluding infeasible pairs — the paper's
// p_{q,r} ordering.
func sortedPerQuery(p *Problem) [][]int {
	nQ := p.numQueries()
	out := make([][]int, nQ)
	for q := 0; q < nQ; q++ {
		var idx []int
		for m := range p.Cands {
			if p.Cands[m].Times[q] < Infeasible {
				idx = append(idx, m)
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return p.Cands[idx[a]].Times[q] < p.Cands[idx[b]].Times[q]
		})
		out[q] = idx
	}
	return out
}

// perQueryRouting maps each query to the chosen candidate serving it.
func perQueryRouting(p *Problem, chosen []int) []int {
	nQ := p.numQueries()
	out := make([]int, nQ)
	for q := 0; q < nQ; q++ {
		out[q] = -1
		best := p.Base[q]
		for _, m := range chosen {
			if t := p.Cands[m].Times[q]; t < best {
				best = t
				out[q] = m
			}
		}
	}
	return out
}
