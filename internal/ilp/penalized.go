package ilp

import (
	"math"
	"sort"
	"time"
)

// SolvePenalized solves the per-tenant Lagrangian subproblem of the
// multi-tenant decomposition (internal/tenant, dual.go): minimize
//
//	obj(S) + lambda · size(S)
//
// subject to size(S) ≤ p.Budget and the fact-group exclusion rule. The
// returned Solution reports the *unpenalized* objective obj(S) — the same
// semantics as Solve — so callers recover the Lagrangian value as
// Objective + lambda·Size; with lambda = 0 the call delegates to Solve
// outright and the two are interchangeable.
//
// The search is a compact sequential branch-and-bound: the instances this
// exists for are per-tenant pools of a few dozen candidates, where the
// decomposition parallelizes across tenants (par.ForEach in dual.go)
// rather than inside one subproblem, so opts.Workers is ignored here. The
// admissible node bound is the greedy per-query relaxation of Solve plus
// lambda times the already-included size: future includes only add
// penalty, so dropping their penalty term keeps the bound optimistic.
//
// Submodularity pre-prune: a candidate's marginal benefit in any set is at
// most its solo benefit Σ_q w_q·max(0, base_q − t_q). A candidate whose
// solo benefit does not exceed lambda·size can never pay its penalty and
// is dropped up front — the lever that keeps high-λ probes near-free.
func SolvePenalized(p *Problem, lambda float64, opts SolveOptions) *Solution {
	if lambda <= 0 {
		return Solve(p, opts)
	}

	ps := newPenSolver(p, lambda, opts)
	ps.seedIncumbent(opts.WarmStart)
	times := make([]float64, ps.nQ)
	copy(times, p.Base)
	ps.dfs(0, 0, times, ps.objectiveOf(times), nil, map[int]bool{})

	chosen := append([]int(nil), ps.bestChosen...)
	sort.Ints(chosen)
	return &Solution{
		Chosen:           chosen,
		Objective:        p.Objective(chosen),
		Size:             p.SizeOf(chosen),
		Proven:           ps.proven,
		Nodes:            ps.nodes,
		Pruned:           ps.pruned,
		IncumbentUpdates: ps.incumbents,
		PerQuery:         perQueryRouting(p, chosen),
	}
}

// penSolver is the penalized search state. It deliberately does not share
// the incremental-bound machinery of solver: per-tenant instances are
// small, and keeping the two searches independent preserves the
// byte-identical behaviour of the existing Solve pipeline.
type penSolver struct {
	p      *Problem
	lambda float64
	nQ     int

	order     []int       // alive candidates, benefit density descending
	alive     []bool      // alive[m]: survived the submodularity pre-prune
	perQ      [][]int     // per query: alive candidates by ascending time
	perQTimes [][]float64 // runtimes aligned with perQ
	weights   []float64
	sizes     []int64
	amort     []float64 // λ·size_m / #queries m can improve (see bound)
	decided   []int8    // 0 undecided, 1 included, 2 excluded

	maxNodes  int
	deadline  time.Time
	interrupt func(nodes int) bool

	nodes      int
	pruned     int
	incumbents int
	proven     bool
	bestObj    float64 // penalized: obj + λ·size
	bestChosen []int
}

func newPenSolver(p *Problem, lambda float64, opts SolveOptions) *penSolver {
	nQ := p.numQueries()
	ps := &penSolver{p: p, lambda: lambda, nQ: nQ, proven: true}
	ps.weights = make([]float64, nQ)
	for q := 0; q < nQ; q++ {
		ps.weights[q] = p.weight(q)
	}
	ps.sizes = make([]int64, len(p.Cands))
	ps.alive = make([]bool, len(p.Cands))
	type scored struct {
		idx     int
		density float64
	}
	var sc []scored
	for m := range p.Cands {
		ps.sizes[m] = p.Cands[m].Size
		if p.Cands[m].Size > p.Budget {
			continue
		}
		solo := 0.0
		for q := 0; q < nQ; q++ {
			if t := p.Cands[m].Times[q]; t < p.Base[q] {
				solo += ps.weights[q] * (p.Base[q] - t)
			}
		}
		// Pays for neither its penalty nor (solo == 0) any query: drop.
		if solo <= lambda*float64(p.Cands[m].Size) {
			continue
		}
		ps.alive[m] = true
		size := float64(p.Cands[m].Size)
		if size < 1 {
			size = 1
		}
		sc = append(sc, scored{m, solo / size})
	}
	sort.SliceStable(sc, func(i, j int) bool { return sc[i].density > sc[j].density })
	ps.order = make([]int, len(sc))
	for i, s := range sc {
		ps.order[i] = s.idx
	}
	ps.decided = make([]int8, len(p.Cands))

	// Amortized penalty shares: candidate m improves K_m queries at most,
	// so charging each of those queries λ·size_m/K_m never exceeds m's
	// real penalty λ·size_m — the admissible future-penalty term of bound.
	ps.amort = make([]float64, len(p.Cands))
	for m := range p.Cands {
		if !ps.alive[m] {
			continue
		}
		k := 0
		for q := 0; q < nQ; q++ {
			if p.Cands[m].Times[q] < p.Base[q] {
				k++
			}
		}
		if k > 0 {
			ps.amort[m] = lambda * float64(p.Cands[m].Size) / float64(k)
		}
	}

	ps.perQ = make([][]int, nQ)
	ps.perQTimes = make([][]float64, nQ)
	for q := 0; q < nQ; q++ {
		var idx []int
		for m := range p.Cands {
			if ps.alive[m] && p.Cands[m].Times[q] < Infeasible {
				idx = append(idx, m)
			}
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return p.Cands[idx[a]].Times[q] < p.Cands[idx[b]].Times[q]
		})
		ts := make([]float64, len(idx))
		for r, m := range idx {
			ts[r] = p.Cands[m].Times[q]
		}
		ps.perQ[q] = idx
		ps.perQTimes[q] = ts
	}

	ps.maxNodes = opts.MaxNodes
	if ps.maxNodes == 0 {
		ps.maxNodes = 5_000_000
	} else if ps.maxNodes < 0 {
		ps.maxNodes = math.MaxInt
	}
	if opts.TimeLimit > 0 {
		ps.deadline = time.Now().Add(opts.TimeLimit)
	}
	ps.interrupt = opts.Interrupt
	return ps
}

func (ps *penSolver) objectiveOf(times []float64) float64 {
	cur := 0.0
	for q, t := range times {
		cur += ps.weights[q] * t
	}
	return cur
}

// penalizedValue is obj(chosen) + λ·size(chosen), summed in the fixed
// query order so repeated evaluations are bit-equal.
func (ps *penSolver) penalizedValue(chosen []int) float64 {
	return ps.p.Objective(chosen) + ps.lambda*float64(ps.p.SizeOf(chosen))
}

// seedIncumbent installs the better of the penalized greedy solution and
// the clipped warm-start subset as the initial incumbent.
func (ps *penSolver) seedIncumbent(warm []int) {
	ps.bestChosen = nil
	ps.bestObj = ps.penalizedValue(nil)

	// Penalized greedy: repeatedly add the candidate with the best
	// marginal gain net of its penalty, while positive. Deterministic
	// tie-break by candidate index.
	times := make([]float64, ps.nQ)
	copy(times, ps.p.Base)
	var chosen []int
	var used int64
	factUsed := map[int]bool{}
	inSet := make([]bool, len(ps.p.Cands))
	for {
		best, bestGain := -1, 0.0
		for _, m := range ps.order {
			if inSet[m] || used+ps.sizes[m] > ps.p.Budget {
				continue
			}
			if g := ps.p.Cands[m].FactGroup; g > 0 && factUsed[g] {
				continue
			}
			gain := -ps.lambda * float64(ps.sizes[m])
			for q := 0; q < ps.nQ; q++ {
				if t := ps.p.Cands[m].Times[q]; t < times[q] {
					gain += ps.weights[q] * (times[q] - t)
				}
			}
			if gain > bestGain+1e-12 {
				best, bestGain = m, gain
			}
		}
		if best < 0 {
			break
		}
		inSet[best] = true
		chosen = append(chosen, best)
		used += ps.sizes[best]
		if g := ps.p.Cands[best].FactGroup; g > 0 {
			factUsed[g] = true
		}
		for q := 0; q < ps.nQ; q++ {
			if t := ps.p.Cands[best].Times[q]; t < times[q] {
				times[q] = t
			}
		}
	}
	if v := ps.penalizedValue(chosen); v < ps.bestObj-1e-12 {
		ps.bestObj, ps.bestChosen = v, chosen
	}

	// Warm start: clip to alive, fitting, fact-group-feasible candidates
	// in the given order, then adopt if it beats the greedy seed.
	if len(warm) > 0 {
		var wc []int
		var wUsed int64
		wFact := map[int]bool{}
		for _, m := range warm {
			if m < 0 || m >= len(ps.p.Cands) || !ps.alive[m] {
				continue
			}
			if wUsed+ps.sizes[m] > ps.p.Budget {
				continue
			}
			if g := ps.p.Cands[m].FactGroup; g > 0 && wFact[g] {
				continue
			}
			wc = append(wc, m)
			wUsed += ps.sizes[m]
			if g := ps.p.Cands[m].FactGroup; g > 0 {
				wFact[g] = true
			}
		}
		if v := ps.penalizedValue(wc); v < ps.bestObj-1e-12 {
			ps.bestObj, ps.bestChosen = v, wc
		}
	}
}

// bound is the admissible node bound: the greedy per-query relaxation
// plus the penalty already committed plus an amortized share of each
// future include's penalty. A query may be served by the current times
// (no extra cost), an already-included candidate (penalty already in
// λ·usedSize) or an undecided one — the latter charged λ·size_m/K_m,
// where K_m counts the queries m can improve. Any completion S pays
// λ·size_m in full for each chosen m while at most K_m of its queries
// collect the share, so the relaxation stays a true lower bound on
// obj(S) + λ·size(S).
func (ps *penSolver) bound(times []float64, usedSize int64) float64 {
	remaining := ps.p.Budget - usedSize
	total := ps.lambda * float64(usedSize)
	for q, cur := range times {
		w := ps.weights[q]
		best := w * cur
		ts := ps.perQTimes[q]
		for r, m := range ps.perQ[q] {
			wt := w * ts[r]
			if wt >= best {
				break // ascending times; every later cost is ≥ wt ≥ best
			}
			if ps.decided[m] == 2 || ps.sizes[m] > remaining {
				continue
			}
			cost := wt
			if ps.decided[m] != 1 {
				cost += ps.amort[m]
			}
			if cost < best {
				best = cost
			}
		}
		total += best
	}
	return total
}

// dfs explores decisions for order[pos:]. cur is the penalized value of
// the current chosen set: weighted times plus λ·usedSize.
func (ps *penSolver) dfs(pos int, usedSize int64, times []float64, cur float64, chosen []int, factUsed map[int]bool) {
	ps.nodes++
	if ps.nodes > ps.maxNodes ||
		(!ps.deadline.IsZero() && ps.nodes%1024 == 0 && time.Now().After(ps.deadline)) ||
		(ps.interrupt != nil && ps.interrupt(ps.nodes)) {
		ps.proven = false
		return
	}
	if cur < ps.bestObj-1e-12 {
		ps.bestObj = cur
		ps.bestChosen = append([]int(nil), chosen...)
		ps.incumbents++
	}
	if pos >= len(ps.order) {
		return
	}
	if ps.bound(times, usedSize) >= ps.bestObj-1e-12 {
		ps.pruned++
		return
	}
	m := ps.order[pos]
	cand := &ps.p.Cands[m]
	fits := usedSize+cand.Size <= ps.p.Budget
	factOK := cand.FactGroup <= 0 || !factUsed[cand.FactGroup]

	if fits && factOK {
		ps.decided[m] = 1
		newTimes := make([]float64, ps.nQ)
		improved := false
		newObj := 0.0
		for q, t := range times {
			if tc := cand.Times[q]; tc < t {
				t = tc
				improved = true
			}
			newTimes[q] = t
			newObj += ps.weights[q] * t
		}
		if improved {
			newObj += ps.lambda * float64(usedSize+cand.Size)
			if cand.FactGroup > 0 {
				factUsed[cand.FactGroup] = true
			}
			ps.dfs(pos+1, usedSize+cand.Size, newTimes, newObj, append(chosen, m), factUsed)
			if cand.FactGroup > 0 {
				delete(factUsed, cand.FactGroup)
			}
		}
		ps.decided[m] = 0
	}
	ps.decided[m] = 2
	ps.dfs(pos+1, usedSize, times, cur, chosen, factUsed)
	ps.decided[m] = 0
}
