// Package ilp implements the paper's candidate-selection formulation (§5):
// choose a subset of candidate objects (MVs and fact-table re-clusterings)
// within a space budget, minimizing total expected workload runtime, with
// at most one re-clustering per fact table. It provides
//
//   - dominance pruning (§5.3),
//   - an exact branch-and-bound solver matching the paper's "optimal, no
//     relaxation" ILP,
//   - the Greedy(m,k) heuristic of Chaudhuri & Narasayya used by the
//     commercial baseline (§5.2), and
//   - the relaxation-based formulation of Papadomanolakis & Ailamaki for
//     the §5.4 ablation, solved through package lp.
//
// The paper's penalty variables x_{q,r} (Table 3) encode, for a fixed
// choice of y, exactly "each query runs on its fastest chosen object"; the
// solver works directly with that induced objective
//
//	obj(S) = Σ_q w_q · min( base_q, min_{m∈S, feasible} t_{q,m} )
//
// which is the ILP's value at integer points, so the optimum found here is
// the optimum of the paper's ILP.
package ilp

import (
	"math"
)

// Infeasible marks a (query, candidate) pair the candidate cannot serve.
var Infeasible = math.Inf(1)

// Candidate is one selectable object.
type Candidate struct {
	// Name labels the candidate in solutions.
	Name string
	// Size is the space charge in bytes.
	Size int64
	// Times[q] is the expected runtime of query q on this candidate, or
	// Infeasible.
	Times []float64
	// FactGroup groups mutually exclusive fact-table re-clusterings
	// (condition 4 of §5.1): at most one candidate per positive group id
	// may be chosen. Zero (the zero value) and negative ids mean the
	// candidate is an ordinary MV with no exclusion.
	FactGroup int
	// Ref lets callers attach their own descriptor (e.g. *costmodel.MVDesign).
	Ref any
}

// Problem is one selection instance.
type Problem struct {
	Cands []Candidate
	// Base[q] is query q's runtime when no candidate serves it (the
	// existing fact-table design, always available at zero space cost).
	Base []float64
	// Weights are query frequencies; nil means all 1 (§5.3).
	Weights []float64
	// Budget is the space budget in bytes.
	Budget int64
}

func (p *Problem) weight(q int) float64 {
	if p.Weights == nil {
		return 1
	}
	return p.Weights[q]
}

// numQueries returns |Q|.
func (p *Problem) numQueries() int { return len(p.Base) }

// Objective evaluates obj(S) for the chosen candidate indexes.
func (p *Problem) Objective(chosen []int) float64 {
	total := 0.0
	for q := 0; q < p.numQueries(); q++ {
		best := p.Base[q]
		for _, m := range chosen {
			if t := p.Cands[m].Times[q]; t < best {
				best = t
			}
		}
		total += p.weight(q) * best
	}
	return total
}

// SizeOf sums the sizes of the chosen candidates.
func (p *Problem) SizeOf(chosen []int) int64 {
	var s int64
	for _, m := range chosen {
		s += p.Cands[m].Size
	}
	return s
}

// Feasible reports whether chosen fits the budget and fact-group rules.
func (p *Problem) Feasible(chosen []int) bool {
	if p.SizeOf(chosen) > p.Budget {
		return false
	}
	seen := map[int]bool{}
	for _, m := range chosen {
		g := p.Cands[m].FactGroup
		if g <= 0 {
			continue
		}
		if seen[g] {
			return false
		}
		seen[g] = true
	}
	return true
}

// PruneDominated (dominance pruning, §5.3) lives in dominance.go together
// with the solver's budget-aware preprocessing pass.
