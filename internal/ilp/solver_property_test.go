package ilp

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// plainOptions is the seed-equivalent configuration: no preprocessing, no
// Lagrangian bound, no incumbent polish, sequential search.
func plainOptions() SolveOptions {
	return SolveOptions{NoPreprocess: true, NoLagrangian: true, NoPolish: true}
}

// hardRandomProblem draws a selection instance whose budget actually
// binds: candidate sizes near the budget, fact groups, and a mix of
// infeasible pairs — the regime where preprocessing, the Lagrangian bound
// and the parallel decomposition all engage.
func hardRandomProblem(rng *rand.Rand, n, q int) *Problem {
	p := &Problem{Base: make([]float64, q)}
	for i := range p.Base {
		p.Base[i] = 5 + rng.Float64()*5
	}
	for m := 0; m < n; m++ {
		times := make([]float64, q)
		for i := range times {
			switch {
			case rng.Float64() < 0.4:
				times[i] = Infeasible
			default:
				times[i] = rng.Float64() * 12 // sometimes worse than base
			}
		}
		fg := 0
		if rng.Float64() < 0.25 {
			fg = 1 + rng.Intn(2)
		}
		p.Cands = append(p.Cands, Candidate{
			Name: "c", Size: int64(10 + rng.Intn(60)), Times: times, FactGroup: fg,
		})
	}
	// Tight budgets: roughly room for 2–5 average candidates.
	p.Budget = int64(60 + rng.Intn(140))
	if rng.Float64() < 0.3 {
		p.Weights = make([]float64, q)
		for i := range p.Weights {
			p.Weights[i] = 1 + rng.Float64()*9
		}
	}
	return p
}

// TestFullSolverMatchesPlain is the overhaul's core property: the
// preprocessed + Lagrangian-bounded + polished solver returns the same
// objective as the seed-equivalent plain solver on randomized problems,
// and the same chosen set when both prove optimality.
func TestFullSolverMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		p := hardRandomProblem(rng, 2+rng.Intn(12), 1+rng.Intn(6))
		plain := Solve(p, plainOptions())
		full := Solve(p, SolveOptions{})
		if plain.Proven != full.Proven {
			t.Fatalf("trial %d: proven mismatch plain=%v full=%v", trial, plain.Proven, full.Proven)
		}
		if math.Abs(plain.Objective-full.Objective) > 1e-9 {
			t.Fatalf("trial %d: objective plain=%.12f full=%.12f", trial, plain.Objective, full.Objective)
		}
		if !p.Feasible(full.Chosen) {
			t.Fatalf("trial %d: full solver returned infeasible set %v", trial, full.Chosen)
		}
		if got := p.Objective(full.Chosen); got != full.Objective {
			t.Fatalf("trial %d: reported objective %.12f != evaluated %.12f", trial, full.Objective, got)
		}
		if plain.Proven && full.Proven && !sameSet(plain.Chosen, full.Chosen) {
			// Distinct optima must at least tie exactly.
			if p.Objective(plain.Chosen) != p.Objective(full.Chosen) {
				t.Fatalf("trial %d: different non-tied optima plain=%v full=%v", trial, plain.Chosen, full.Chosen)
			}
		}
		if full.Nodes > plain.Nodes {
			t.Logf("trial %d: full explored more nodes (%d > %d)", trial, full.Nodes, plain.Nodes)
		}
	}
}

// TestFullSolverTightAndSlackBudgets pins the preprocessing edge cases:
// a budget nothing fits (empty optimum), and a budget everything fits
// (exclusion-free candidates are fixed, only fact groups searched).
func TestFullSolverTightAndSlackBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		p := hardRandomProblem(rng, 2+rng.Intn(10), 1+rng.Intn(5))
		for _, budget := range []int64{0, 5, 1 << 40} {
			p.Budget = budget
			plain := Solve(p, plainOptions())
			full := Solve(p, SolveOptions{})
			if math.Abs(plain.Objective-full.Objective) > 1e-9 {
				t.Fatalf("trial %d budget=%d: objective plain=%.12f full=%.12f",
					trial, budget, plain.Objective, full.Objective)
			}
			if !p.Feasible(full.Chosen) {
				t.Fatalf("trial %d budget=%d: infeasible %v", trial, budget, full.Chosen)
			}
		}
	}
}

// TestParallelMatchesSequential verifies the deterministic parallel
// subtree search returns the sequential solution: same Chosen, Objective
// (bitwise), Size, PerQuery and Proven for every worker count.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		p := hardRandomProblem(rng, 8+rng.Intn(12), 2+rng.Intn(6))
		seq := Solve(p, SolveOptions{})
		for _, workers := range []int{2, 3, 4} {
			par := Solve(p, SolveOptions{Workers: workers})
			if !reflect.DeepEqual(seq.Chosen, par.Chosen) {
				t.Fatalf("trial %d workers=%d: chosen seq=%v par=%v", trial, workers, seq.Chosen, par.Chosen)
			}
			if seq.Objective != par.Objective {
				t.Fatalf("trial %d workers=%d: objective seq=%v par=%v", trial, workers, seq.Objective, par.Objective)
			}
			if seq.Size != par.Size || seq.Proven != par.Proven {
				t.Fatalf("trial %d workers=%d: size/proven mismatch", trial, workers)
			}
			if !reflect.DeepEqual(seq.PerQuery, par.PerQuery) {
				t.Fatalf("trial %d workers=%d: routing mismatch", trial, workers)
			}
		}
	}
}

// TestParallelRunToRunReproducible verifies the stronger contract: for a
// fixed worker count the whole Solution — Nodes included — is bit-identical
// across runs. Run under -race this also exercises the pipeline's
// synchronization.
func TestParallelRunToRunReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		p := hardRandomProblem(rng, 20, 8)
		for _, workers := range []int{2, 4} {
			a := Solve(p, SolveOptions{Workers: workers})
			b := Solve(p, SolveOptions{Workers: workers})
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("trial %d workers=%d: runs differ:\n%+v\n%+v", trial, workers, a, b)
			}
		}
	}
}

// TestParallelMatchesBruteForce anchors the parallel path to ground truth
// directly, independent of the sequential implementation.
func TestParallelMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		p := hardRandomProblem(rng, 4+rng.Intn(8), 1+rng.Intn(5))
		want := bruteForce(p)
		sol := Solve(p, SolveOptions{Workers: 3})
		if !sol.Proven {
			t.Fatalf("trial %d: parallel solve did not prove optimality", trial)
		}
		if math.Abs(sol.Objective-want) > 1e-9 {
			t.Fatalf("trial %d: parallel %.12f, brute force %.12f", trial, sol.Objective, want)
		}
	}
}

// TestGreedyMatchesReference guards the optimized Greedy's bit-identical
// contract against a direct transcription of the original implementation.
func TestGreedyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		p := hardRandomProblem(rng, 2+rng.Intn(20), 1+rng.Intn(6))
		seedM := 1 + rng.Intn(2)
		k := 0
		if rng.Float64() < 0.5 {
			k = 1 + rng.Intn(6)
		}
		got := Greedy(p, seedM, k)
		want := referenceGreedy(p, seedM, k)
		if !reflect.DeepEqual(got.Chosen, want.Chosen) {
			t.Fatalf("trial %d: chosen %v != reference %v", trial, got.Chosen, want.Chosen)
		}
		if got.Objective != want.Objective {
			t.Fatalf("trial %d: objective %v != reference %v", trial, got.Objective, want.Objective)
		}
	}
}

// referenceGreedy is the seed repository's Greedy, kept verbatim as the
// behavioural reference for the optimized implementation.
func referenceGreedy(p *Problem, seedM, k int) *Solution {
	if k <= 0 {
		k = len(p.Cands)
	}
	bestSeed := []int{}
	bestObj := p.Objective(nil)
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			if p.Feasible(cur) {
				if obj := p.Objective(cur); obj < bestObj-1e-12 {
					bestObj = obj
					bestSeed = append([]int(nil), cur...)
				}
			} else {
				return
			}
		}
		if len(cur) == seedM {
			return
		}
		for m := start; m < len(p.Cands); m++ {
			rec(m+1, append(cur, m))
		}
	}
	rec(0, nil)

	chosen := append([]int(nil), bestSeed...)
	obj := p.Objective(chosen)
	for len(chosen) < k {
		bestM, bestNew := -1, obj
		for m := range p.Cands {
			if containsIdx(chosen, m) {
				continue
			}
			trial := append(append([]int(nil), chosen...), m)
			if !p.Feasible(trial) {
				continue
			}
			if o := p.Objective(trial); o < bestNew-1e-12 {
				bestNew = o
				bestM = m
			}
		}
		if bestM < 0 {
			break
		}
		chosen = append(chosen, bestM)
		obj = bestNew
	}
	sol := &Solution{Chosen: chosen, Objective: obj, Size: p.SizeOf(chosen), Proven: false}
	sol.PerQuery = perQueryRouting(p, chosen)
	return sol
}

func containsIdx(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}

// TestReduceFixesWhenEverythingFits pins the "fit any residual budget"
// rule: with the whole pool inside the budget, exclusion-free candidates
// are fixed and the search still returns the plain optimum.
func TestReduceFixesWhenEverythingFits(t *testing.T) {
	p := &Problem{
		Base: []float64{10, 10, 10},
		Cands: []Candidate{
			{Name: "a", Size: 10, Times: []float64{4, Infeasible, Infeasible}},
			{Name: "b", Size: 10, Times: []float64{Infeasible, 3, Infeasible}},
			{Name: "f1", Size: 10, Times: []float64{Infeasible, Infeasible, 5}, FactGroup: 1},
			{Name: "f2", Size: 12, Times: []float64{Infeasible, Infeasible, 4}, FactGroup: 1},
			{Name: "useless", Size: 10, Times: []float64{11, 12, 13}},
		},
		Budget: 1000,
	}
	red := reduce(p, SolveOptions{})
	if len(red.forced) != 2 {
		t.Fatalf("forced = %v, want the two exclusion-free improving candidates", red.forced)
	}
	if len(red.p.Cands) != 2 {
		t.Fatalf("active = %d candidates, want the 2-member fact group", len(red.p.Cands))
	}
	sol := Solve(p, SolveOptions{})
	plain := Solve(p, plainOptions())
	if math.Abs(sol.Objective-plain.Objective) > 1e-12 {
		t.Fatalf("objective %.12f != plain %.12f", sol.Objective, plain.Objective)
	}
	if !sameSet(sol.Chosen, []int{0, 1, 3}) {
		t.Fatalf("chosen %v, want {a, b, f2}", sol.Chosen)
	}
}

// TestReduceDropsOversizedAndUseless pins the other preprocessing rules.
func TestReduceDropsOversizedAndUseless(t *testing.T) {
	p := &Problem{
		Base: []float64{10},
		Cands: []Candidate{
			{Name: "fits", Size: 10, Times: []float64{5}},
			{Name: "toobig", Size: 100, Times: []float64{1}},
			{Name: "useless", Size: 1, Times: []float64{10}},
			{Name: "dominated", Size: 20, Times: []float64{6}},
		},
		Budget: 50,
	}
	red := reduce(p, SolveOptions{})
	// Only 'fits' survives the drops; since it fits the budget outright it
	// is then fixed, leaving nothing to search.
	if len(red.forced) != 1 || red.forced[0] != 0 {
		t.Fatalf("forced = %v, want ['fits']", red.forced)
	}
	if len(red.p.Cands) != 0 {
		t.Fatalf("%d active candidates remain, want 0", len(red.p.Cands))
	}
	sol := Solve(p, SolveOptions{})
	if len(sol.Chosen) != 1 || sol.Chosen[0] != 0 {
		t.Fatalf("chosen %v, want [0]", sol.Chosen)
	}
}
