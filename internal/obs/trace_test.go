package obs

import (
	"strings"
	"testing"
)

// TestTracerRing pins the bounded-ring semantics: Seq keeps counting
// past capacity, Events returns exactly the last cap entries oldest
// first, and Recent trims from the old end.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		tr.Event(float64(i), "tick", F("i", i))
	}
	if tr.Seq() != 10 {
		t.Fatalf("seq = %d, want 10", tr.Seq())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		wantSeq := uint64(7 + i)
		if e.Seq != wantSeq || e.Clock != float64(7+i) {
			t.Errorf("event %d: seq=%d clock=%g, want seq=%d clock=%d", i, e.Seq, e.Clock, wantSeq, 7+i)
		}
	}
	recent := tr.Recent(2)
	if len(recent) != 2 || recent[0].Seq != 9 || recent[1].Seq != 10 {
		t.Errorf("Recent(2) = %v", recent)
	}
}

// TestTracerString pins the key=value rendering used by /statusz.
func TestTracerString(t *testing.T) {
	tr := NewTracer(4)
	tr.Span(12.5, 0.25, "solve", F("nodes", 1234), F("proven", true))
	got := tr.Events()[0].String()
	want := "seq=1 clock=12.5 kind=solve dur=0.25 nodes=1234 proven=true"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestTracerSink pins the JSONL sink: one JSON object per line, emitted
// at event time, carrying seq/clock/kind/fields.
func TestTracerSink(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(4)
	tr.SetSink(&sb)
	tr.Event(1, "drift", F("dist", 0.31))
	tr.Span(2, 3, "build", F("mv", "mv_2"))
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink wrote %d lines, want 2", len(lines))
	}
	want0 := `{"seq":1,"clock":1,"kind":"drift","fields":[{"k":"dist","v":"0.31"}]}`
	if lines[0] != want0 {
		t.Errorf("line 0 = %s, want %s", lines[0], want0)
	}
	want1 := `{"seq":2,"clock":2,"dur":3,"kind":"build","fields":[{"k":"mv","v":"mv_2"}]}`
	if lines[1] != want1 {
		t.Errorf("line 1 = %s, want %s", lines[1], want1)
	}
}

// TestFieldFormatting pins F's canonical value formatting.
func TestFieldFormatting(t *testing.T) {
	cases := []struct {
		v    any
		want string
	}{
		{"s", "s"},
		{42, "42"},
		{int64(-7), "-7"},
		{uint64(9), "9"},
		{1.25, "1.25"},
		{0.1, "0.1"},
		{true, "true"},
	}
	for _, c := range cases {
		if got := F("k", c.v).Value; got != c.want {
			t.Errorf("F(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
