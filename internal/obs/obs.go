// Package obs is the dependency-free observability layer: a metrics
// registry (counters, gauges, and log-linear-bucket histograms suitable
// for latency percentiles from microseconds to minutes) with Prometheus
// text-format exposition, and a bounded-ring structured event tracer
// (trace.go) for the adaptive loop.
//
// Two properties shape every API here:
//
//   - The off state is free. A nil *Registry hands out nil metric
//     handles, and every method on a nil handle is a no-op — so an
//     uninstrumented run (every experiment table, every pre-existing
//     code path) takes a nil-check and nothing else. No build tags, no
//     interface indirection, no allocation.
//   - Everything is race-clean. Counters, gauges and histogram buckets
//     are atomics; registration and exposition take the registry lock.
//     Concurrent observers plus a scraping reader is the normal case,
//     not an edge case (obs_test.go runs exactly that under -race).
//
// Exposition is deterministic: families print in sorted name order,
// children in sorted label order, so a fixed sequence of observations
// produces byte-identical /metrics output (pinned by a golden test).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType names a family's kind in the TYPE exposition line.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families by name. The zero value is not usable;
// build one with NewRegistry. A nil *Registry is the disabled layer:
// every constructor returns nil and every nil handle no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one named metric with a fixed label set and typed children,
// one per distinct label-value tuple (a single child under the empty key
// for unlabeled metrics).
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string

	mu       sync.Mutex
	children map[string]any // joined label values → *Counter / *Gauge / *Histogram
	// fn, when non-nil, is a collected metric: the value is read at
	// exposition time instead of being pushed (CounterFunc/GaugeFunc —
	// the bridge for pre-existing monotonic ints like cache hit counts).
	fn func() float64

	// histogram bucket layout, shared by every child (histogram.go).
	loDecade, hiDecade int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey joins label values with 0x1f (never a legal label byte here).
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// getFamily returns the family for name, creating it on first use. A
// name re-registered with a different type or label set panics: silently
// returning a mismatched handle would corrupt the exposition.
func (r *Registry) getFamily(name, help string, typ metricType, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: %s re-registered with label %q (was %q)", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		children: make(map[string]any),
		loDecade: defaultLoDecade, hiDecade: defaultHiDecade,
	}
	r.families[name] = f
	return f
}

// Counter returns the unlabeled counter named name, registering it on
// first use. Nil registry → nil handle (a no-op).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, typeCounter, nil)
	return f.counter(nil)
}

// CounterVec returns the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.getFamily(name, help, typeCounter, labels)}
}

// CounterFunc registers a collected counter: fn is read at exposition
// time. fn must be monotonically non-decreasing and safe for concurrent
// use — the bridge for pre-existing lifetime counters (atomic ints,
// cache hit counts) that already exist elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, typeCounter, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Gauge returns the unlabeled gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, typeGauge, nil)
	return f.gauge(nil)
}

// GaugeFunc registers a collected gauge: fn is read at exposition time
// and must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, typeGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram returns the unlabeled histogram named name with the default
// seconds-scale buckets (1µs–900s, log-linear).
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, typeHistogram, nil)
	return f.histogram(nil)
}

// HistogramRange returns the unlabeled histogram named name with
// log-linear buckets spanning 10^loDecade .. 9×10^hiDecade — for
// non-latency populations (solver node counts, byte sizes) whose range
// the seconds-scale default would clip.
func (r *Registry) HistogramRange(name, help string, loDecade, hiDecade int) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, typeHistogram, nil)
	f.mu.Lock()
	if len(f.children) == 0 {
		f.loDecade, f.hiDecade = clampDecades(loDecade, hiDecade)
	}
	f.mu.Unlock()
	return f.histogram(nil)
}

// HistogramVec returns the labeled histogram family named name.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.getFamily(name, help, typeHistogram, labels)}
}

// counter returns (creating on miss) the child for the label values.
func (f *family) counter(values []string) *Counter {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(values)
	if c, ok := f.children[k]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	f.children[k] = c
	return c
}

func (f *family) gauge(values []string) *Gauge {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(values)
	if g, ok := f.children[k]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	f.children[k] = g
	return g
}

func (f *family) histogram(values []string) *Histogram {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(values)
	if h, ok := f.children[k]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(f.loDecade, f.hiDecade)
	f.children[k] = h
	return h
}

// CounterVec is a labeled counter family; With resolves one child.
type CounterVec struct{ f *family }

// With returns the counter for the label values (len must match the
// registered label names). Nil vec → nil handle.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.counter(values)
}

// HistogramVec is a labeled histogram family; With resolves one child.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values. Nil vec → nil handle.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.histogram(values)
}

// Counter is a monotonically increasing value. All methods are atomic
// and no-ops on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (in-flight requests, bytes
// held). All methods are atomic and no-ops on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots one family's children in label-key order.
func (f *family) sortedChildren() (keys []string, children []any) {
	f.mu.Lock()
	keys = make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children = make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	return keys, children
}

// atomicAddFloat adds delta to the float64 stored in bits, CAS-looped.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}
