package obs

import (
	"math"
	"sync/atomic"
)

// FloatCounter is a monotonically increasing float64 — for accumulated
// quantities measured in seconds (or bytes-seconds) where the integer
// Counter would truncate. Same contract as Counter: atomic, and every
// method is a no-op on a nil receiver.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v (negative or NaN v is ignored: counters only go up).
func (c *FloatCounter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	atomicAddFloat(&c.bits, v)
}

// Value returns the current total (0 on nil).
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// FloatGauge is a float64 gauge (optimality gaps, ratios). Atomic,
// nil-safe like Gauge.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// FloatCounterVec is a labeled float-counter family; With resolves one
// child.
type FloatCounterVec struct{ f *family }

// With returns the float counter for the label values. Nil vec → nil
// handle.
func (v *FloatCounterVec) With(values ...string) *FloatCounter {
	if v == nil {
		return nil
	}
	return v.f.floatCounter(values)
}

// FloatCounterVec returns the labeled float-counter family named name —
// exposed as a counter (the text format does not distinguish value
// width). A name must not also be used as an integer CounterVec.
func (r *Registry) FloatCounterVec(name, help string, labels ...string) *FloatCounterVec {
	if r == nil {
		return nil
	}
	return &FloatCounterVec{f: r.getFamily(name, help, typeCounter, labels)}
}

// FloatGauge returns the unlabeled float gauge named name.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, typeGauge, nil)
	return f.floatGauge(nil)
}

func (f *family) floatCounter(values []string) *FloatCounter {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(values)
	if c, ok := f.children[k]; ok {
		return c.(*FloatCounter)
	}
	c := &FloatCounter{}
	f.children[k] = c
	return c
}

func (f *family) floatGauge(values []string) *FloatGauge {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(values)
	if g, ok := f.children[k]; ok {
		return g.(*FloatGauge)
	}
	g := &FloatGauge{}
	f.children[k] = g
	return g
}
