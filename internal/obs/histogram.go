package obs

import (
	"math"
	"sync/atomic"
)

// The default bucket layout spans 1µs to 900s: decade −6 through decade
// +2, each decade split into nine linear buckets with upper bounds
// m×10^d for m = 1..9 — the classic log-linear scheme. Relative
// quantile error is bounded by one linear step (≤ 12.5% at the top of a
// decade, tighter below), which is plenty for p50/p95/p99 over
// microsecond-to-minute latencies, and the layout needs no tuning to
// the population: the same buckets serve a 3µs cache hit and a 40s
// migration build.
const (
	defaultLoDecade  = -6
	defaultHiDecade  = 2
	bucketsPerDecade = 9
	// decade bounds the configurable range so a bucket count stays sane.
	minDecade = -9
	maxDecade = 9
)

// clampDecades normalizes a requested [lo, hi] decade range.
func clampDecades(lo, hi int) (int, int) {
	if lo < minDecade {
		lo = minDecade
	}
	if hi > maxDecade {
		hi = maxDecade
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// bucketBounds builds the finite upper bounds for a decade range. The
// bounds are computed once per layout and shared by every histogram
// with that layout (the package caches the default).
func bucketBounds(lo, hi int) []float64 {
	bounds := make([]float64, 0, (hi-lo+1)*bucketsPerDecade)
	for d := lo; d <= hi; d++ {
		p := math.Pow(10, float64(d))
		for m := 1; m <= bucketsPerDecade; m++ {
			bounds = append(bounds, float64(m)*p)
		}
	}
	return bounds
}

var defaultBounds = bucketBounds(defaultLoDecade, defaultHiDecade)

// Histogram is a fixed-bucket log-linear histogram. Observations index a
// bucket by binary search over the precomputed bounds (no float log, so
// boundary assignment is exact and platform-independent), then do one
// atomic add — cheap enough for per-request hot paths. A final implicit
// +Inf bucket absorbs overflow; values at or below zero land in the
// first bucket. All methods no-op (or return zeros) on a nil receiver.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1: the last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(loDecade, hiDecade int) *Histogram {
	bounds := defaultBounds
	if loDecade != defaultLoDecade || hiDecade != defaultHiDecade {
		bounds = bucketBounds(loDecade, hiDecade)
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// bucketIndex finds the first bound ≥ v (len(bounds) = the +Inf bucket).
func bucketIndex(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(h.bounds, v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBits, v)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts:
// the target rank is located in its bucket and interpolated linearly
// between the bucket's bounds. Values in the +Inf bucket report the
// largest finite bound. Returns 0 with no observations or a nil
// receiver. The estimate is deterministic for a fixed multiset of
// observations regardless of their order — the property the recorded
// latency tables rely on.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum+1e-9 < rank {
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // +Inf bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot copies the bucket counts; total is their sum (the count at
// the moment of the copy — a scrape racing observers sees some
// consistent-enough prefix, which is the Prometheus contract).
func (h *Histogram) snapshot() ([]uint64, uint64) {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	return counts, total
}

// BucketUpper returns the histogram's bucket upper bound that v falls
// into (+Inf for overflow) — the "latency bucket" tag the structured
// request log carries so log lines group the same way the histogram
// does.
func (h *Histogram) BucketUpper(v float64) float64 {
	if h == nil {
		return DefaultBucketUpper(v)
	}
	i := bucketIndex(h.bounds, v)
	if i == len(h.bounds) {
		return math.Inf(1)
	}
	return h.bounds[i]
}

// DefaultBucketUpper is BucketUpper against the default seconds layout,
// for callers with no histogram at hand (a disabled registry still logs).
func DefaultBucketUpper(v float64) float64 {
	i := bucketIndex(defaultBounds, v)
	if i == len(defaultBounds) {
		return math.Inf(1)
	}
	return defaultBounds[i]
}
