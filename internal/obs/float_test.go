package obs

import (
	"strings"
	"testing"
)

func TestFloatCounterNilAndMonotonic(t *testing.T) {
	var nilC *FloatCounter
	nilC.Add(1) // must not panic
	if nilC.Value() != 0 {
		t.Fatal("nil FloatCounter has a value")
	}
	var c FloatCounter
	c.Add(0.25)
	c.Add(0.5)
	c.Add(-3) // ignored: counters only go up
	c.Add(0)  // ignored
	if got := c.Value(); got != 0.75 {
		t.Fatalf("FloatCounter = %v, want 0.75", got)
	}

	var nilG *FloatGauge
	nilG.Set(2)
	if nilG.Value() != 0 {
		t.Fatal("nil FloatGauge has a value")
	}
	var g FloatGauge
	g.Set(1.5)
	g.Set(-0.25)
	if got := g.Value(); got != -0.25 {
		t.Fatalf("FloatGauge = %v, want -0.25", got)
	}

	var nilV *FloatCounterVec
	if nilV.With("x") != nil {
		t.Fatal("nil FloatCounterVec.With is not nil")
	}
	var nilR *Registry
	if nilR.FloatCounterVec("a", "b", "c") != nil || nilR.FloatGauge("a", "b") != nil {
		t.Fatal("nil registry returned live float handles")
	}
}

// TestPrometheusObjectFamiliesGolden pins the exposition of the plan-
// attribution and solver-introspection families byte for byte: the
// labeled float counter (coradd_object_measured_seconds), its integer
// sibling (coradd_object_serves_total) and the float gauge
// (coradd_solve_gap) render with shortest-round-trip float formatting in
// sorted family and child order.
func TestPrometheusObjectFamiliesGolden(t *testing.T) {
	r := NewRegistry()
	serves := r.CounterVec("coradd_object_serves_total", "Queries served, by design object.", "object")
	serves.With("base").Add(3)
	serves.With("mv5").Add(7)
	secs := r.FloatCounterVec("coradd_object_measured_seconds", "Measured seconds by design object.", "object")
	secs.With("base").Add(0.5)
	secs.With("base").Add(0.125)
	secs.With("mv5").Add(1.75)
	gap := r.FloatGauge("coradd_solve_gap", "Most recent solve's optimality gap.")
	gap.Set(0.597102)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP coradd_object_measured_seconds Measured seconds by design object.
# TYPE coradd_object_measured_seconds counter
coradd_object_measured_seconds{object="base"} 0.625
coradd_object_measured_seconds{object="mv5"} 1.75
# HELP coradd_object_serves_total Queries served, by design object.
# TYPE coradd_object_serves_total counter
coradd_object_serves_total{object="base"} 3
coradd_object_serves_total{object="mv5"} 7
# HELP coradd_solve_gap Most recent solve's optimality gap.
# TYPE coradd_solve_gap gauge
coradd_solve_gap 0.597102
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}
