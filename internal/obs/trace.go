package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Field is one structured key/value pair of a trace event. Values are
// pre-formatted strings so an event is immutable and its rendering
// deterministic (F formats the common types canonically).
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// F builds a Field with canonical formatting: integers in base 10,
// floats in shortest round-trip form, bools as true/false, everything
// else through fmt. Canonical formatting is what makes two runs of the
// same deterministic schedule produce byte-identical event sequences.
func F(key string, v any) Field {
	var s string
	switch x := v.(type) {
	case string:
		s = x
	case int:
		s = strconv.Itoa(x)
	case int64:
		s = strconv.FormatInt(x, 10)
	case uint64:
		s = strconv.FormatUint(x, 10)
	case float64:
		s = strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		s = strconv.FormatBool(x)
	default:
		s = fmt.Sprint(x)
	}
	return Field{Key: key, Value: s}
}

// Event is one entry of the trace ring: a point event, or a span when
// Dur > 0. Clock is whatever timeline the emitter lives on — the
// adaptive loop stamps simulated seconds, an HTTP middleware would stamp
// wall seconds; the tracer never reads a clock itself, which is what
// keeps replayed schedules byte-identical.
type Event struct {
	// Seq is the emission ordinal (monotone from 1, never reset — the
	// ring bounds retention, not numbering).
	Seq uint64 `json:"seq"`
	// Clock is the emitter's timestamp; Dur a span's length on the same
	// timeline (0 = point event).
	Clock float64 `json:"clock"`
	Dur   float64 `json:"dur,omitempty"`
	// Kind classifies the event (e.g. "build", "solve", "drift").
	Kind string `json:"kind"`
	// Fields are the event's structured attributes, in emission order.
	Fields []Field `json:"fields,omitempty"`
}

// String renders the event as one key=value line.
func (e Event) String() string {
	s := fmt.Sprintf("seq=%d clock=%s kind=%s", e.Seq, strconv.FormatFloat(e.Clock, 'g', -1, 64), e.Kind)
	if e.Dur > 0 {
		s += " dur=" + strconv.FormatFloat(e.Dur, 'g', -1, 64)
	}
	for _, f := range e.Fields {
		s += " " + f.Key + "=" + f.Value
	}
	return s
}

// Tracer is a bounded ring of structured events. Writes are mutex-
// serialized (events come from a handful of control-plane sites, not
// per-request hot paths); readers copy. A nil *Tracer no-ops everywhere,
// so an uninstrumented controller pays one nil check per event site.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	next int    // ring write position
	seq  uint64 // total events ever emitted
	sink io.Writer
}

// DefaultTraceEvents is the ring capacity when NewTracer is given n ≤ 0.
const DefaultTraceEvents = 256

// NewTracer returns a tracer retaining the last n events (n ≤ 0 takes
// DefaultTraceEvents).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceEvents
	}
	return &Tracer{ring: make([]Event, 0, n)}
}

// SetSink attaches a writer that receives every event as one JSON line
// at emission time (a JSONL trace file). The tracer serializes writes;
// the writer need not be concurrency-safe. nil detaches.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = w
	t.mu.Unlock()
}

// Event records a point event.
func (t *Tracer) Event(clock float64, kind string, fields ...Field) {
	t.emit(Event{Clock: clock, Kind: kind, Fields: fields})
}

// Span records a completed span of length dur on the emitter's timeline.
func (t *Tracer) Span(clock, dur float64, kind string, fields ...Field) {
	t.emit(Event{Clock: clock, Dur: dur, Kind: kind, Fields: fields})
}

func (t *Tracer) emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.next] = e
		t.next = (t.next + 1) % cap(t.ring)
	}
	if t.sink != nil {
		if b, err := json.Marshal(e); err == nil {
			t.sink.Write(append(b, '\n'))
		}
	}
	t.mu.Unlock()
}

// Seq returns the total number of events ever emitted (0 on nil).
func (t *Tracer) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Events returns the retained events, oldest first (nil on nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		out = append(out, t.ring...)
		return out
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Recent returns up to n most recent events, oldest first.
func (t *Tracer) Recent(n int) []Event {
	evs := t.Events()
	if n >= 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}
