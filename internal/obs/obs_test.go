package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilNoOps pins the disabled layer's contract: a nil registry hands
// out nil handles and every operation on them (and on a nil tracer) is
// a safe no-op — the "off state is free" guarantee the uninstrumented
// experiment paths rely on.
func TestNilNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "h")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("g", "h")
	g.Set(5)
	g.Inc()
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("h", "h")
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram recorded")
	}
	cv := r.CounterVec("cv", "h", "l")
	cv.With("x").Inc()
	hv := r.HistogramVec("hv", "h", "l")
	hv.With("x").Observe(1)
	r.CounterFunc("cf", "h", func() float64 { return 1 })
	r.GaugeFunc("gf", "h", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry exposition: %v", err)
	}

	var tr *Tracer
	tr.Event(1, "k", F("a", 1))
	tr.Span(1, 2, "k")
	if tr.Events() != nil || tr.Seq() != 0 {
		t.Error("nil tracer recorded")
	}
}

// TestHistogramQuantiles checks the log-linear estimator against a
// population with known order statistics.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "seconds")
	// 100 observations: 90 at ~1ms, 9 at ~20ms, 1 at ~3s.
	for i := 0; i < 90; i++ {
		h.Observe(0.00095)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.019)
	}
	h.Observe(2.9)

	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if p50 < 0.0005 || p50 > 0.001 {
		t.Errorf("p50 = %g, want ~1ms", p50)
	}
	if p95 < 0.01 || p95 > 0.02 {
		t.Errorf("p95 = %g, want ~20ms", p95)
	}
	if p99 < 0.01 || p99 > 3 {
		t.Errorf("p99 = %g out of range", p99)
	}
	if p50 > p95 || p95 > p99 {
		t.Errorf("quantiles not monotone: %g %g %g", p50, p95, p99)
	}
	// The sum is exact (not bucketed).
	want := 90*0.00095 + 9*0.019 + 2.9
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
	// Overflow clamps to the largest finite bound.
	h2 := r.HistogramRange("small", "unitless", 0, 0)
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 9 {
		t.Errorf("overflow quantile = %g, want clamp to 9", got)
	}
}

// TestBucketUpper pins the log-linear bucket assignment at and around
// decade boundaries — the latency-bucket tag the structured request log
// carries must match the histogram's own bucketing.
func TestBucketUpper(t *testing.T) {
	cases := []struct{ v, want float64 }{
		{0, 1e-6},                      // zero lands in the first bucket
		{1e-6, 1e-6},                   // exact bound is inclusive
		{1.5e-6, 2e-6},                 // interior of a decade
		{8.5e-4, 9 * math.Pow(10, -4)}, // top of a decade (bound as constructed)
		{9.5e-4, 1e-3},                 // between decades
		{1, 1},                         // unit
		{899, 900},                     // top finite bucket
		{901, math.Inf(1)},             // overflow
	}
	for _, c := range cases {
		if got := DefaultBucketUpper(c.v); got != c.want {
			t.Errorf("DefaultBucketUpper(%g) = %g, want %g", c.v, got, c.want)
		}
	}
}

// TestConcurrentRegistry is the -race gate for the metrics layer:
// parallel observers hammer counters, gauges, labeled histograms and
// vec lookups while a scraping reader renders the exposition — the
// steady state of a live daemon under load.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("reqs", "requests", "route", "code")
	lat := r.HistogramVec("lat", "seconds", "route")
	inflight := r.Gauge("inflight", "gauge")
	r.CounterFunc("served", "served", func() float64 { return 42 })
	tr := NewTracer(64)

	const workers, perWorker = 8, 2000
	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	// Scraping reader: continuous exposition + quantile reads.
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			lat.With("/query").Quantile(0.95)
			tr.Recent(16)
		}
	}()
	routes := []string{"/query", "/statusz"}
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				route := routes[i%len(routes)]
				inflight.Inc()
				reqs.With(route, "200").Inc()
				lat.With(route).Observe(float64(i%100) * 1e-4)
				tr.Event(float64(i), "req", F("w", w))
				inflight.Dec()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()

	if got := reqs.With("/query", "200").Value() + reqs.With("/statusz", "200").Value(); got != workers*perWorker {
		t.Errorf("counter total = %d, want %d", got, workers*perWorker)
	}
	if got := lat.With("/query").Count() + lat.With("/statusz").Count(); got != workers*perWorker {
		t.Errorf("histogram total = %d, want %d", got, workers*perWorker)
	}
	if inflight.Value() != 0 {
		t.Errorf("inflight = %d after drain, want 0", inflight.Value())
	}
	if tr.Seq() != workers*perWorker {
		t.Errorf("trace seq = %d, want %d", tr.Seq(), workers*perWorker)
	}
}

// TestPrometheusGolden pins the exposition format byte for byte: family
// ordering, label ordering and escaping, cumulative le-buckets, _sum /
// _count, collected funcs, and float formatting.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("http_requests_total", "Requests by route and code.", "route", "code")
	reqs.With("/query", "200").Add(3)
	reqs.With("/query", "503").Inc()
	reqs.With("/healthz", "200").Add(2)
	g := r.Gauge("inflight", "In-flight requests.")
	g.Set(2)
	r.GaugeFunc("cache_used_bytes", "Cache footprint.", func() float64 { return 1536 })
	r.CounterFunc("served_total", "Lifetime served.", func() float64 { return 7 })
	h := r.HistogramRange("build_seconds", "Per-step build seconds.", 0, 1)
	h.Observe(2)   // le 2
	h.Observe(2.5) // le 3
	h.Observe(45)  // le 50
	h.Observe(500) // +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP build_seconds Per-step build seconds.
# TYPE build_seconds histogram
build_seconds_bucket{le="1"} 0
build_seconds_bucket{le="2"} 1
build_seconds_bucket{le="3"} 2
build_seconds_bucket{le="4"} 2
build_seconds_bucket{le="5"} 2
build_seconds_bucket{le="6"} 2
build_seconds_bucket{le="7"} 2
build_seconds_bucket{le="8"} 2
build_seconds_bucket{le="9"} 2
build_seconds_bucket{le="10"} 2
build_seconds_bucket{le="20"} 2
build_seconds_bucket{le="30"} 2
build_seconds_bucket{le="40"} 2
build_seconds_bucket{le="50"} 3
build_seconds_bucket{le="60"} 3
build_seconds_bucket{le="70"} 3
build_seconds_bucket{le="80"} 3
build_seconds_bucket{le="90"} 3
build_seconds_bucket{le="+Inf"} 4
build_seconds_sum 549.5
build_seconds_count 4
# HELP cache_used_bytes Cache footprint.
# TYPE cache_used_bytes gauge
cache_used_bytes 1536
# HELP http_requests_total Requests by route and code.
# TYPE http_requests_total counter
http_requests_total{route="/healthz",code="200"} 2
http_requests_total{route="/query",code="200"} 3
http_requests_total{route="/query",code="503"} 1
# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight 2
# HELP served_total Lifetime served.
# TYPE served_total counter
served_total 7
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestReRegistration pins that re-registering a family returns the same
// underlying child, and that a type mismatch panics loudly.
func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registration returned a different child")
	}
	defer func() {
		if recover() == nil {
			t.Error("type-mismatched re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}
