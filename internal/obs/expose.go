package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families in sorted name order, children in
// sorted label order, histograms as cumulative le-buckets plus _sum and
// _count. The output for a fixed observation multiset is byte-identical
// run to run (golden-tested). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(string(f.typ))
		bw.WriteByte('\n')

		f.mu.Lock()
		fn := f.fn
		f.mu.Unlock()
		if fn != nil {
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(formatValue(fn()))
			bw.WriteByte('\n')
			continue
		}

		keys, children := f.sortedChildren()
		for i, child := range children {
			values := strings.Split(keys[i], "\x1f")
			switch m := child.(type) {
			case *Counter:
				writeSample(bw, f.name, "", f.labels, values, "", "", formatUint(m.Value()))
			case *FloatCounter:
				writeSample(bw, f.name, "", f.labels, values, "", "", formatValue(m.Value()))
			case *Gauge:
				writeSample(bw, f.name, "", f.labels, values, "", "", strconv.FormatInt(m.Value(), 10))
			case *FloatGauge:
				writeSample(bw, f.name, "", f.labels, values, "", "", formatValue(m.Value()))
			case *Histogram:
				counts, _ := m.snapshot()
				cum := uint64(0)
				for bi, b := range m.bounds {
					cum += counts[bi]
					writeSample(bw, f.name, "_bucket", f.labels, values, "le", formatValue(b), formatUint(cum))
				}
				cum += counts[len(m.bounds)]
				writeSample(bw, f.name, "_bucket", f.labels, values, "le", "+Inf", formatUint(cum))
				writeSample(bw, f.name, "_sum", f.labels, values, "", "", formatValue(m.Sum()))
				writeSample(bw, f.name, "_count", f.labels, values, "", "", formatUint(m.Count()))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition — the /metrics
// endpoint. A nil registry serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// writeSample emits one `name{labels} value` line. extraK/extraV append
// a synthetic label (the histogram's le) after the family labels.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, extraK, extraV, val string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extraK != "" {
		bw.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l)
			bw.WriteString(`="`)
			v := ""
			if i < len(values) {
				v = values[i]
			}
			bw.WriteString(escapeLabel(v))
			bw.WriteByte('"')
		}
		if extraK != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraK)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraV))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(val)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatValue renders a float the shortest way that round-trips —
// matching how Prometheus clients print bounds, and stable across runs.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
