package workload

import (
	"reflect"
	"strings"
	"testing"

	"coradd/internal/query"
)

// predQ builds a query predicated on the given columns.
func predQ(name string, cols ...string) *query.Query {
	q := &query.Query{Name: name, Fact: "f", Targets: []string{"z"}, AggCol: "rev"}
	for _, c := range cols {
		q.Predicates = append(q.Predicates, query.NewEq(c, 1))
	}
	return q
}

func TestFrequentSetsAprioriAndOrdering(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{}, clk.now)
	// 4× {a,b}, 4× {a,b,c}, 2× {d}: support(a)=support(b)=support(ab)=0.8,
	// support(abc)=0.4, support(d)=0.2. All observations at one instant so
	// decay cannot skew shares.
	for i := 0; i < 4; i++ {
		m.Observe(predQ("ab", "a", "b"))
		m.Observe(predQ("abc", "a", "b", "c"))
	}
	m.Observe(predQ("d", "d"))
	m.Observe(predQ("d", "d"))

	sets := m.FrequentSets(0.3, 3)
	got := map[string]float64{}
	for _, s := range sets {
		got[strings.Join(s.Cols, ",")] = s.Share
	}
	for _, want := range []struct {
		key   string
		share float64
	}{{"a", 0.8}, {"b", 0.8}, {"a,b", 0.8}, {"c", 0.4}, {"a,c", 0.4}, {"b,c", 0.4}, {"a,b,c", 0.4}} {
		if sh, ok := got[want.key]; !ok || sh < want.share-1e-9 || sh > want.share+1e-9 {
			t.Fatalf("set %q: got share %v (present=%v), want %v\nall: %v", want.key, sh, ok, want.share, got)
		}
	}
	if _, ok := got["d"]; ok {
		t.Fatal("infrequent singleton d (share 0.2) mined at minShare 0.3")
	}
	// Ranking: share desc, then size desc — the 2-set {a,b} precedes its
	// singletons, and every 0.8-share set precedes the 0.4-share ones.
	if want := "a,b"; strings.Join(sets[0].Cols, ",") != want {
		t.Fatalf("first set %v, want %s", sets[0].Cols, want)
	}
	if sets[len(sets)-1].Share > sets[0].Share {
		t.Fatal("sets not ordered by share descending")
	}
}

func TestFrequentSetsDeterministic(t *testing.T) {
	build := func() []FrequentSet {
		clk := &fakeClock{}
		m := mustNew(t, Config{}, clk.now)
		for i := 0; i < 3; i++ {
			m.Observe(predQ("ab", "a", "b"))
			clk.t += 10
			m.Observe(predQ("bc", "b", "c"))
			clk.t += 5
		}
		return m.FrequentSets(0.2, 3)
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same stream mined different sets:\n%v\n%v", a, b)
	}
}

func TestFrequentSetsMaxSizeAndEmpty(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{}, clk.now)
	if got := m.FrequentSets(0.1, 3); got != nil {
		t.Fatalf("empty monitor mined %v", got)
	}
	m.Observe(predQ("abc", "a", "b", "c"))
	for _, s := range m.FrequentSets(0.1, 2) {
		if len(s.Cols) > 2 {
			t.Fatalf("maxSize 2 emitted %v", s.Cols)
		}
	}
}

func TestTemplateSignature(t *testing.T) {
	clk := &fakeClock{}
	a := mustNew(t, Config{}, clk.now)
	b := mustNew(t, Config{}, clk.now)
	// Same templates, different order and frequency: same signature.
	a.Observe(predQ("x", "a"))
	a.Observe(predQ("y", "b"))
	b.Observe(predQ("y", "b"))
	b.Observe(predQ("y", "b"))
	b.Observe(predQ("x", "a"))
	if a.TemplateSignature() != b.TemplateSignature() {
		t.Fatal("order/frequency changed the template signature")
	}
	// A new template changes it.
	sig := a.TemplateSignature()
	a.Observe(predQ("z", "c"))
	if a.TemplateSignature() == sig {
		t.Fatal("new template kept the signature")
	}
}
