package workload

import (
	"sort"
	"strings"
)

// FrequentSet is one frequent predicate-column set mined from the
// template table: a set of columns that co-occur as predicates in a
// large enough share of the recent (decayed) query mix. This is the
// Aouiche & Darmont idea — mine the query log for the column groups
// worth materializing for — applied to the monitor's template table,
// whose decayed rates already are the "recent log" a fresh mining pass
// would reconstruct.
type FrequentSet struct {
	// Cols are the predicate columns, sorted ascending.
	Cols []string
	// Share is the set's support: the decayed-rate share of templates
	// whose predicates include every column of the set.
	Share float64
	// Templates counts the live templates supporting the set.
	Templates int
}

// FrequentSets mines frequent predicate-column sets from the template
// table by Apriori levelwise search: items are predicate column names,
// a template's weight is its decayed rate at the current clock, and a
// set is frequent when its supporting templates carry at least minShare
// of the total rate (minShare ≤ 0 means 0.1). maxSize caps set
// cardinality (≤ 0 means 3). Support is downward closed, so each level
// extends the previous one's survivors only.
//
// The result is deterministic for a given observation history and
// clock: sets are ranked by share descending, then size descending
// (the more specific set first among equals — it pins down a tighter
// candidate group), then lexicographically.
func (m *Monitor) FrequentSets(minShare float64, maxSize int) []FrequentSet {
	if minShare <= 0 {
		minShare = 0.1
	}
	if maxSize <= 0 {
		maxSize = 3
	}
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()

	// Template item sets and weights, in first-seen order.
	total := 0.0
	type row struct {
		cols map[string]bool
		rate float64
	}
	rows := make([]row, 0, len(m.order))
	for _, tp := range m.order {
		r := tp.rateAt(t, m.cfg.HalfLife)
		total += r
		if r <= 0 {
			continue
		}
		cols := make(map[string]bool, len(tp.rep.Predicates))
		for i := range tp.rep.Predicates {
			cols[tp.rep.Predicates[i].Col] = true
		}
		rows = append(rows, row{cols: cols, rate: r})
	}
	if total <= 0 {
		return nil
	}

	support := func(set []string) (float64, int) {
		rate, n := 0.0, 0
		for _, rw := range rows {
			ok := true
			for _, c := range set {
				if !rw.cols[c] {
					ok = false
					break
				}
			}
			if ok {
				rate += rw.rate
				n++
			}
		}
		return rate / total, n
	}

	// Level 1: frequent singletons, which also seed the extension alphabet.
	universe := map[string]bool{}
	for _, rw := range rows {
		for c := range rw.cols {
			universe[c] = true
		}
	}
	alphabet := make([]string, 0, len(universe))
	for c := range universe {
		alphabet = append(alphabet, c)
	}
	sort.Strings(alphabet)

	var out []FrequentSet
	var level [][]string
	for _, c := range alphabet {
		if sh, n := support([]string{c}); sh >= minShare {
			out = append(out, FrequentSet{Cols: []string{c}, Share: sh, Templates: n})
			level = append(level, []string{c})
		}
	}
	freqSingle := map[string]bool{}
	for _, s := range level {
		freqSingle[s[0]] = true
	}

	// Levelwise extension: every frequent k-set in sorted form is a
	// frequent (k−1)-prefix (downward closure) extended by a frequent
	// singleton beyond its last item, so this enumeration is exhaustive.
	for size := 2; size <= maxSize && len(level) > 0; size++ {
		var next [][]string
		for _, prefix := range level {
			last := prefix[len(prefix)-1]
			for _, c := range alphabet {
				if c <= last || !freqSingle[c] {
					continue
				}
				set := append(append([]string(nil), prefix...), c)
				if sh, n := support(set); sh >= minShare {
					out = append(out, FrequentSet{Cols: set, Share: sh, Templates: n})
					next = append(next, set)
				}
			}
		}
		level = next
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		if len(out[i].Cols) != len(out[j].Cols) {
			return len(out[i].Cols) > len(out[j].Cols)
		}
		return strings.Join(out[i].Cols, ",") < strings.Join(out[j].Cols, ",")
	})
	return out
}

// TemplateSignature identifies the current template *set* (not rates):
// the sorted structural fingerprints joined. Two monitors whose streams
// produced the same templates — regardless of order or frequency —
// share a signature. internal/tenant uses it to skip re-mining when the
// table hasn't drifted structurally since the last redesign.
func (m *Monitor) TemplateSignature() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, len(m.order))
	for i, tp := range m.order {
		keys[i] = tp.key
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}
