// Package workload implements the online workload monitor of the adaptive
// redesign loop (see internal/adapt): the batch designer solves for a
// *fixed* workload, but a live system's query mix moves, so the monitor
// watches the stream the deployed design is actually serving and decides
// when the incumbent design has gone stale.
//
// The pieces, in stream order:
//
//   - Templating: each observed query is fingerprinted by its structural
//     shape — fact table, predicated columns with their operator kinds,
//     target list and aggregate — with literal constants normalized away
//     (the same normalization workload-driven selection tools such as
//     Aouiche & Darmont's apply before mining the query log). Repeated
//     instances of one template dedup onto a single entry; repeated
//     observations of the *same* *query.Query pointer skip fingerprint
//     construction entirely through a pointer memo, the same
//     compile-once idiom as query.CompileCache.
//   - Frequency: each template carries an exponentially decayed rate with
//     a configurable half-life, so the snapshot the redesign runs on is
//     the *recent* mix, not the all-time histogram.
//   - Bindings: each template keeps a bounded ring of its most recent
//     literal bindings (the constants templating normalized away), for
//     diagnostics and selectivity re-estimation.
//   - Drift: two deterministic signals. The distribution distance is the
//     total-variation distance between the current template-share vector
//     and the one captured at the last Rebase (design time). The cost
//     ratio compares the decayed workload cost under the incumbent design
//     against an incrementally maintained lower bound (each template is
//     costed once when first seen and again at each Rebase; the decayed
//     cost sums then update in O(1) per observation, and both sums decay
//     by the same factor, so the ratio is exactly what a full
//     recomputation over the template table yields).
//
// Determinism: the monitor never reads wall-clock time — the clock is
// injected — so one stream replayed against the same clock produces an
// identical template table, identical snapshots and identical drift
// decisions, which is what makes the adaptive ablation reproducible.
package workload

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"coradd/internal/query"
	"coradd/internal/value"
)

// Clock supplies the monitor's notion of time, in seconds. Injected so
// replays are deterministic: the simulated substrate advances it by
// measured query seconds, tests by hand.
type Clock func() float64

// Config tunes a Monitor.
type Config struct {
	// HalfLife is the rate decay half-life in clock seconds: an
	// observation's contribution to its template's rate halves every
	// HalfLife seconds. Default 300.
	HalfLife float64
	// Reservoir bounds the per-template ring of recent literal bindings.
	// Default 8.
	Reservoir int
	// DistThreshold triggers drift when the total-variation distance
	// between the current template distribution and the Rebase baseline
	// reaches it. Default 0.25.
	DistThreshold float64
	// CostRatioThreshold triggers drift when the cost ratio (decayed
	// workload cost under the incumbent design over the decayed lower
	// bound) grows by this factor relative to its value at the last
	// Rebase — the absolute ratio reflects budget tightness, its growth
	// reflects drift. When no rebase-time ratio exists the raw ratio is
	// compared instead. Only armed once Rebase has supplied a cost
	// function. Default 1.5.
	CostRatioThreshold float64
	// MinObserved is the number of observations after a Rebase before
	// drift may trigger, so a redesign is never launched off a handful of
	// samples. Default 32.
	MinObserved int
	// MaxTemplates bounds the template table; when exceeded, the template
	// with the lowest current rate (oldest first on ties) is evicted.
	// 0 means unbounded.
	MaxTemplates int
}

// DefaultConfig returns the default tuning.
func DefaultConfig() Config {
	return Config{
		HalfLife:           300,
		Reservoir:          8,
		DistThreshold:      0.25,
		CostRatioThreshold: 1.5,
		MinObserved:        32,
	}
}

func (c *Config) fill() {
	def := DefaultConfig()
	if c.HalfLife <= 0 {
		c.HalfLife = def.HalfLife
	}
	if c.Reservoir <= 0 {
		c.Reservoir = def.Reservoir
	}
	if c.DistThreshold <= 0 {
		c.DistThreshold = def.DistThreshold
	}
	if c.CostRatioThreshold <= 0 {
		c.CostRatioThreshold = def.CostRatioThreshold
	}
	if c.MinObserved <= 0 {
		c.MinObserved = def.MinObserved
	}
}

// CostFn prices one template representative: cur is its expected runtime
// under the incumbent design, lb a lower bound on what any design could
// achieve (internal/adapt uses the cost model's estimate on a dedicated
// perfectly clustered MV). Both in seconds.
type CostFn func(q *query.Query) (cur, lb float64)

// Binding is one observed literal assignment of a template: the constants
// of the instance's predicates, flattened in the template's canonical
// predicate order (Lo, Hi for ranges; the set values for INs).
type Binding struct {
	// At is the clock time of the observation.
	At float64
	// Literals are the flattened constants.
	Literals []value.V
}

// template is one entry of the table.
type template struct {
	key   string
	rep   *query.Query // first-seen instance, the snapshot representative
	rate  float64      // decayed count, valued at `at`
	at    float64      // clock of the last rate update
	count int64        // raw observation count
	first int64        // observation ordinal at first sight (tie-break)
	cur   float64      // representative's cost under the incumbent design
	lb    float64      // representative's lower-bound cost
	// ring holds the most recent bindings; next is the slot the next
	// observation overwrites, so ring[next:] ++ ring[:next] is oldest to
	// newest once the ring has wrapped.
	ring []Binding
	next int
}

// rateAt decays the template's rate to time t.
func (tp *template) rateAt(t, halfLife float64) float64 {
	dt := t - tp.at
	if dt <= 0 {
		return tp.rate
	}
	return tp.rate * math.Exp2(-dt/halfLife)
}

// TemplateInfo is one template's public view.
type TemplateInfo struct {
	// Key is the structural fingerprint.
	Key string
	// Name is the representative query's name.
	Name string
	// Rate is the decayed observation rate at the time of the call; Share
	// its fraction of the total rate.
	Rate, Share float64
	// Count is the raw observation count.
	Count int64
	// CurCost/LBCost are the representative's costs under the incumbent
	// design and the lower bound (zero before the first Rebase).
	CurCost, LBCost float64
	// Bindings are the retained recent literal bindings, oldest first.
	Bindings []Binding
}

// DriftReport is one drift decision with its evidence.
type DriftReport struct {
	// Drifted reports whether a redesign is warranted.
	Drifted bool
	// Distance is the total-variation distance between the current
	// template distribution and the Rebase baseline.
	Distance float64
	// CostRatio is decayed incumbent cost over the decayed lower bound
	// (0 when no cost function has been supplied yet).
	CostRatio float64
	// Observed counts observations since the last Rebase; Templates the
	// current table size; Fresh how many templates appeared since the
	// last Rebase.
	Observed  int64
	Templates int
	Fresh     int
}

// String renders the report for logs and example output.
func (r DriftReport) String() string {
	return fmt.Sprintf("drift=%v dist=%.3f costRatio=%.3f observed=%d templates=%d fresh=%d",
		r.Drifted, r.Distance, r.CostRatio, r.Observed, r.Templates, r.Fresh)
}

// Monitor is the online workload monitor. All methods are safe for
// concurrent use; determinism statements assume a serialized observation
// order (concurrent Observe calls are ordered by the lock).
type Monitor struct {
	cfg   Config
	clock Clock

	// fp memoizes fingerprints per *query.Query, so a stream replaying
	// pooled instances pays string construction once per distinct pointer.
	// Bounded: a stream of always-fresh pointers would otherwise grow the
	// memo forever (see fingerprintOf).
	fpMu sync.RWMutex
	fp   map[*query.Query]string

	mu        sync.Mutex
	templates map[string]*template
	order     []*template // first-seen order, the one iteration order
	observed  int64

	// Drift baseline and incremental cost sums (see package comment).
	baseline      map[string]float64
	rebasedAt     int64 // observation ordinal of the last Rebase
	costFn        CostFn
	curSum, lbSum float64 // decayed Σ rate·cost, valued at sumAt
	sumAt         float64
	baseRatio     float64 // cost ratio at the last Rebase (0 = unknown)
}

// New builds a monitor; clock must be non-nil and non-decreasing. A nil
// clock is a configuration error, not a programming invariant — a library
// entry point must not panic on bad config, so it is reported as an error
// (the internal invariant that a constructed Monitor always has a clock
// lives in now()).
func New(cfg Config, clock Clock) (*Monitor, error) {
	if clock == nil {
		return nil, fmt.Errorf("workload: a Clock is required (inject a simulated clock for deterministic replays)")
	}
	cfg.fill()
	return &Monitor{
		cfg:       cfg,
		clock:     clock,
		fp:        make(map[*query.Query]string),
		templates: make(map[string]*template),
	}, nil
}

// now reads the monitor's clock, keeping the constructor's invariant: a
// Monitor only exists with a clock, so a nil one here is a corrupted
// value (not bad config) and still panics.
func (m *Monitor) now() float64 {
	if m.clock == nil {
		panic("workload: Monitor used without a clock (not built by New)")
	}
	return m.clock()
}

// fpMemoLimit bounds the pointer memo. When a caller feeds a fresh
// pointer per observation the memo never hits anyway; dropping it lets
// genuinely pooled pointers repopulate while keeping memory bounded.
const fpMemoLimit = 8192

// Fingerprint returns q's structural template key: fact table, predicated
// columns with operator kinds (IN predicates also keep their set
// cardinality — a different IN width is a different selectivity class),
// sorted target list and aggregate column. Literal constants do not
// participate, so instances differing only in bindings share a template.
func Fingerprint(q *query.Query) string {
	var b strings.Builder
	b.WriteString(q.Fact)
	cols := make([]string, len(q.Predicates))
	for i := range q.Predicates {
		p := &q.Predicates[i]
		s := p.Col + ":" + p.Op.String()
		if p.Op == query.In {
			s += ":" + strconv.Itoa(len(p.Set))
		}
		cols[i] = s
	}
	sort.Strings(cols)
	for _, c := range cols {
		b.WriteString("|p:")
		b.WriteString(c)
	}
	targets := append([]string(nil), q.Targets...)
	sort.Strings(targets)
	for _, t := range targets {
		b.WriteString("|t:")
		b.WriteString(t)
	}
	b.WriteString("|agg:")
	b.WriteString(q.AggCol)
	return b.String()
}

// KeyOf resolves q's fingerprint through the monitor's pointer memo —
// the cheap path for callers (the adaptive controller's rate table) that
// key their own state by template.
func (m *Monitor) KeyOf(q *query.Query) string { return m.fingerprintOf(q) }

// fingerprintOf resolves q's fingerprint through the bounded pointer memo.
func (m *Monitor) fingerprintOf(q *query.Query) string {
	m.fpMu.RLock()
	key, ok := m.fp[q]
	m.fpMu.RUnlock()
	if ok {
		return key
	}
	key = Fingerprint(q)
	m.fpMu.Lock()
	if len(m.fp) >= fpMemoLimit {
		m.fp = make(map[*query.Query]string, 64)
	}
	m.fp[q] = key
	m.fpMu.Unlock()
	return key
}

// bindingOf flattens q's predicate constants in declaration order.
func bindingOf(q *query.Query, at float64) Binding {
	var lits []value.V
	for i := range q.Predicates {
		p := &q.Predicates[i]
		switch p.Op {
		case query.In:
			lits = append(lits, p.Set...)
		default:
			lits = append(lits, p.Lo, p.Hi)
		}
	}
	return Binding{At: at, Literals: lits}
}

// decay is the factor rates shrink by over dt seconds.
func (m *Monitor) decay(dt float64) float64 {
	if dt <= 0 {
		return 1
	}
	return math.Exp2(-dt / m.cfg.HalfLife)
}

// Observe records one executed query instance at the current clock time.
func (m *Monitor) Observe(q *query.Query) {
	key := m.fingerprintOf(q)
	t := m.now()

	m.mu.Lock()
	defer m.mu.Unlock()
	tp, ok := m.templates[key]
	if !ok {
		tp = &template{
			key:   key,
			rep:   q,
			at:    t,
			first: m.observed,
			ring:  make([]Binding, 0, m.cfg.Reservoir),
		}
		if m.costFn != nil {
			tp.cur, tp.lb = m.costFn(q)
		}
		m.templates[key] = tp
		m.order = append(m.order, tp)
	}
	tp.rate = tp.rateAt(t, m.cfg.HalfLife) + 1
	tp.at = t
	tp.count++
	m.observed++
	m.evictLocked(t)

	// Recent-bindings ring: append until full, then overwrite oldest.
	b := bindingOf(q, t)
	if len(tp.ring) < m.cfg.Reservoir {
		tp.ring = append(tp.ring, b)
	} else {
		tp.ring[tp.next] = b
		tp.next = (tp.next + 1) % m.cfg.Reservoir
	}

	// Incremental cost sums: both decay by the same factor, then the new
	// observation contributes its template's costs once.
	if m.costFn != nil {
		f := m.decay(t - m.sumAt)
		m.curSum = m.curSum*f + tp.cur
		m.lbSum = m.lbSum*f + tp.lb
		m.sumAt = t
	}
}

// evictLocked enforces MaxTemplates: the lowest-rate template goes
// (oldest first on exact ties), deterministically.
func (m *Monitor) evictLocked(t float64) {
	if m.cfg.MaxTemplates <= 0 || len(m.order) <= m.cfg.MaxTemplates {
		return
	}
	victim := -1
	var vRate float64
	for i, tp := range m.order {
		r := tp.rateAt(t, m.cfg.HalfLife)
		if victim < 0 || r < vRate {
			victim, vRate = i, r
		}
	}
	// The evicted template's past contributions stay in the decayed cost
	// sums (they decay away on their own); only its future observations
	// stop accruing.
	tp := m.order[victim]
	delete(m.templates, tp.key)
	m.order = append(m.order[:victim], m.order[victim+1:]...)
}

// Len returns the number of live templates.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// Observed returns the total observation count.
func (m *Monitor) Observed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.observed
}

// sharesLocked returns the current rate share per template key at time t.
func (m *Monitor) sharesLocked(t float64) map[string]float64 {
	total := 0.0
	rates := make([]float64, len(m.order))
	for i, tp := range m.order {
		rates[i] = tp.rateAt(t, m.cfg.HalfLife)
		total += rates[i]
	}
	out := make(map[string]float64, len(m.order))
	for i, tp := range m.order {
		if total > 0 {
			out[tp.key] = rates[i] / total
		} else {
			out[tp.key] = 0
		}
	}
	return out
}

// Snapshot freezes the decayed workload: one query per template, in
// first-seen order, with Weight set to the template's current decayed
// rate. The returned queries are copies of each representative (the
// first-seen instance), so callers may hold them across later stream
// mutation. This is the workload a redesign solves for.
func (m *Monitor) Snapshot() query.Workload {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(query.Workload, 0, len(m.order))
	for _, tp := range m.order {
		r := tp.rateAt(t, m.cfg.HalfLife)
		if r <= 0 {
			continue
		}
		q := *tp.rep
		q.Weight = r
		out = append(out, &q)
	}
	return out
}

// Templates reports the table in first-seen order at the current clock.
func (m *Monitor) Templates() []TemplateInfo {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	shares := m.sharesLocked(t)
	out := make([]TemplateInfo, len(m.order))
	for i, tp := range m.order {
		info := TemplateInfo{
			Key:     tp.key,
			Name:    tp.rep.Name,
			Rate:    tp.rateAt(t, m.cfg.HalfLife),
			Share:   shares[tp.key],
			Count:   tp.count,
			CurCost: tp.cur,
			LBCost:  tp.lb,
		}
		// Oldest to newest: the unwrapped ring suffix first.
		if len(tp.ring) == m.cfg.Reservoir {
			info.Bindings = append(info.Bindings, tp.ring[tp.next:]...)
			info.Bindings = append(info.Bindings, tp.ring[:tp.next]...)
		} else {
			info.Bindings = append(info.Bindings, tp.ring...)
		}
		out[i] = info
	}
	return out
}

// Rebase re-anchors drift detection after a (re)design: the current
// template distribution becomes the baseline, cost supplies the incumbent
// and lower-bound costs of every template (and of templates first seen
// later), and the decayed cost sums restart from an exact recomputation.
// cost may be nil to keep the previous cost function.
func (m *Monitor) Rebase(cost CostFn) {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if cost != nil {
		m.costFn = cost
	}
	m.baseline = m.sharesLocked(t)
	m.rebasedAt = m.observed
	m.curSum, m.lbSum, m.sumAt, m.baseRatio = 0, 0, t, 0
	if m.costFn == nil {
		return
	}
	for _, tp := range m.order {
		tp.cur, tp.lb = m.costFn(tp.rep)
		r := tp.rateAt(t, m.cfg.HalfLife)
		m.curSum += r * tp.cur
		m.lbSum += r * tp.lb
	}
	if m.lbSum > 0 {
		m.baseRatio = m.curSum / m.lbSum
	}
}

// PrimeBaseline seeds the drift baseline with an assumed workload before
// any traffic arrives: the baseline distribution becomes w's normalized
// effective weights, keyed by template fingerprint (weights of queries
// sharing a template merge). A later Rebase replaces it with observed
// shares. Use when the incumbent design's intended mix is known — drift
// is then measured against what the design was solved for, not against
// an empty table.
func (m *Monitor) PrimeBaseline(w query.Workload) {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0.0
	for _, q := range w {
		total += q.EffectiveWeight()
	}
	m.baseline = make(map[string]float64, len(w))
	if total <= 0 {
		return
	}
	for _, q := range w {
		m.baseline[Fingerprint(q)] += q.EffectiveWeight() / total
	}
	// Prime the rebase-time cost ratio too: the growth-based trigger then
	// measures against what the incumbent was designed for.
	if m.costFn != nil {
		cur, lb := 0.0, 0.0
		for _, q := range w {
			cq, lq := m.costFn(q)
			wt := q.EffectiveWeight()
			cur += wt * cq
			lb += wt * lq
		}
		if lb > 0 {
			m.baseRatio = cur / lb
		}
	}
}

// PrimeRates seeds the template table with an assumed workload before any
// traffic arrives: each query becomes a template whose decayed rate
// starts at its effective weight, valued at the current clock (queries
// sharing a template merge; existing templates are left alone). A monitor
// rebuilt after a crash and primed with the crashed monitor's snapshot —
// whose weights ARE its decayed rates — continues the old EWMA trajectory
// instead of slamming to the first few post-restart observations, which
// would read as spurious drift. Follow with Rebase to anchor the drift
// baseline and cost sums on the seeded table.
func (m *Monitor) PrimeRates(w query.Workload) {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, q := range w {
		wt := q.EffectiveWeight()
		if wt <= 0 {
			continue
		}
		key := Fingerprint(q)
		if tp, ok := m.templates[key]; ok {
			tp.rate = tp.rateAt(t, m.cfg.HalfLife) + wt
			tp.at = t
			continue
		}
		tp := &template{
			key:   key,
			rep:   q,
			rate:  wt,
			at:    t,
			first: m.observed,
			ring:  make([]Binding, 0, m.cfg.Reservoir),
		}
		if m.costFn != nil {
			tp.cur, tp.lb = m.costFn(q)
		}
		m.templates[key] = tp
		m.order = append(m.order, tp)
		m.evictLocked(t)
	}
}

// CostSums exposes the decayed Σ rate·cost pair behind the cost-ratio
// signal, decayed to the current clock — for telemetry and for the
// property test pinning the incremental maintenance to a recomputation.
func (m *Monitor) CostSums() (cur, lb float64) {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.decay(t - m.sumAt)
	return m.curSum * f, m.lbSum * f
}

// Drift evaluates the drift signals at the current clock. The decision is
// deterministic: it depends only on the observation history and the
// injected clock.
func (m *Monitor) Drift() DriftReport {
	t := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()

	r := DriftReport{
		Observed:  m.observed - m.rebasedAt,
		Templates: len(m.order),
	}
	shares := m.sharesLocked(t)
	// Total-variation distance; templates absent from one side count as 0.
	// Both loops run in a deterministic order (first-seen, then sorted
	// baseline leftovers) so the float sum is bit-stable across replays.
	d := 0.0
	for _, tp := range m.order {
		d += math.Abs(shares[tp.key] - m.baseline[tp.key])
	}
	var gone []string
	for k := range m.baseline {
		if _, ok := shares[k]; !ok {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		d += m.baseline[k]
	}
	r.Distance = d / 2
	for _, tp := range m.order {
		if tp.first >= m.rebasedAt {
			r.Fresh++
		}
	}
	if m.costFn != nil && m.lbSum > 0 {
		r.CostRatio = m.curSum / m.lbSum
	}
	// The cost signal is the ratio's growth since the last Rebase where a
	// rebase-time ratio exists, the raw ratio otherwise.
	costSignal := r.CostRatio
	if m.baseRatio > 0 {
		costSignal = r.CostRatio / m.baseRatio
	}
	if r.Observed >= int64(m.cfg.MinObserved) &&
		(r.Distance >= m.cfg.DistThreshold ||
			(costSignal > 0 && costSignal >= m.cfg.CostRatioThreshold)) {
		r.Drifted = true
	}
	return r
}
