package workload

import (
	"math"
	"reflect"
	"testing"

	"coradd/internal/query"
	"coradd/internal/ssb"
	"coradd/internal/value"
)

// fakeClock is a hand-advanced clock.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64 { return c.t }

// mustNew builds a monitor or fails the test.
func mustNew(t *testing.T, cfg Config, clock Clock) *Monitor {
	t.Helper()
	m, err := New(cfg, clock)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestNewRejectsNilClock pins the config-error contract: a nil clock is
// reported as an error, not a panic — a library entry point must not
// crash the embedding process on bad configuration.
func TestNewRejectsNilClock(t *testing.T) {
	m, err := New(Config{}, nil)
	if err == nil || m != nil {
		t.Fatalf("New(cfg, nil) = %v, %v; want nil monitor and an error", m, err)
	}
}

func q1() *query.Query {
	return &query.Query{
		Name: "A", Fact: "f",
		Predicates: []query.Predicate{query.NewEq("x", 3), query.NewRange("y", 1, 9)},
		Targets:    []string{"z"},
		AggCol:     "rev",
	}
}

func TestFingerprintNormalizesLiterals(t *testing.T) {
	a := q1()
	b := q1()
	b.Predicates[0] = query.NewEq("x", 77)
	b.Predicates[1] = query.NewRange("y", 2, 4)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("literal change altered fingerprint:\n%s\n%s", Fingerprint(a), Fingerprint(b))
	}
	// Structural changes do alter it: operator, column, targets, IN width.
	c := q1()
	c.Predicates[0] = query.NewRange("x", 3, 3)
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("operator change kept fingerprint")
	}
	d := q1()
	d.Targets = []string{"z", "w"}
	if Fingerprint(a) == Fingerprint(d) {
		t.Error("target change kept fingerprint")
	}
	e := q1()
	e.Predicates[0] = query.NewIn("x", 1, 2)
	f := q1()
	f.Predicates[0] = query.NewIn("x", 1, 2, 3)
	if Fingerprint(e) == Fingerprint(f) {
		t.Error("IN-set width change kept fingerprint")
	}
	// Predicate declaration order does not matter.
	g := q1()
	g.Predicates[0], g.Predicates[1] = g.Predicates[1], g.Predicates[0]
	if Fingerprint(a) != Fingerprint(g) {
		t.Error("predicate order altered fingerprint")
	}
}

func TestEWMADecayHalvesAtHalfLife(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{HalfLife: 10}, clk.now)
	m.Observe(q1())
	clk.t = 10
	info := m.Templates()
	if len(info) != 1 {
		t.Fatalf("templates = %d", len(info))
	}
	if got := info[0].Rate; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("rate after one half-life = %v, want 0.5", got)
	}
	// A second observation at t=10 stacks on the decayed rate.
	m.Observe(q1())
	if got := m.Templates()[0].Rate; math.Abs(got-1.5) > 1e-12 {
		t.Errorf("rate = %v, want 1.5", got)
	}
}

func TestReservoirKeepsMostRecentBindings(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{Reservoir: 3}, clk.now)
	for i := 0; i < 7; i++ {
		clk.t = float64(i)
		q := q1()
		q.Predicates[0] = query.NewEq("x", value.V(i))
		m.Observe(q)
	}
	b := m.Templates()[0].Bindings
	if len(b) != 3 {
		t.Fatalf("reservoir holds %d bindings, want 3", len(b))
	}
	for i, want := range []value.V{4, 5, 6} {
		if b[i].Literals[0] != want {
			t.Errorf("binding %d literal = %d, want %d (oldest-first recency)", i, b[i].Literals[0], want)
		}
		if b[i].At != float64(want) {
			t.Errorf("binding %d at = %v, want %d", i, b[i].At, want)
		}
	}
}

func TestSnapshotWeightsAreDecayedRates(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{HalfLife: 10}, clk.now)
	a := q1()
	b := q1()
	b.Name = "B"
	b.Targets = []string{"z", "w"} // distinct template
	for i := 0; i < 4; i++ {
		m.Observe(a)
	}
	m.Observe(b)
	clk.t = 10
	w := m.Snapshot()
	if len(w) != 2 {
		t.Fatalf("snapshot has %d queries, want 2", len(w))
	}
	if w[0].Name != "A" || w[1].Name != "B" {
		t.Fatalf("snapshot order %v, want first-seen", w.Names())
	}
	if math.Abs(w[0].Weight-2) > 1e-12 || math.Abs(w[1].Weight-0.5) > 1e-12 {
		t.Errorf("weights = %v, %v; want 2, 0.5", w[0].Weight, w[1].Weight)
	}
	// Snapshot queries are copies: mutating them must not touch the table.
	w[0].Weight = 99
	if got := m.Snapshot()[0].Weight; math.Abs(got-2) > 1e-12 {
		t.Errorf("snapshot aliased the template representative (weight %v)", got)
	}
}

func TestDriftDistanceAndCostRatio(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{HalfLife: 1e9, MinObserved: 1, DistThreshold: 0.4, CostRatioThreshold: 2}, clk.now)
	a := q1()
	b := q1()
	b.Name = "B"
	b.Targets = []string{"z", "w"}

	// Phase 1: only A; rebase with costs cur=1, lb=1 for A; B is pricey.
	for i := 0; i < 10; i++ {
		m.Observe(a)
	}
	m.Rebase(func(q *query.Query) (float64, float64) {
		if q.Name == "A" {
			return 1, 1
		}
		return 8, 1
	})
	r := m.Drift()
	if r.Drifted || r.Distance != 0 {
		t.Fatalf("fresh baseline drifted: %+v", r)
	}
	if math.Abs(r.CostRatio-1) > 1e-12 {
		t.Fatalf("cost ratio = %v, want 1", r.CostRatio)
	}

	// Phase 2: B floods in. Distance → share(B) and ratio rises.
	for i := 0; i < 10; i++ {
		m.Observe(b)
	}
	r = m.Drift()
	if math.Abs(r.Distance-0.5) > 1e-12 {
		t.Errorf("distance = %v, want 0.5", r.Distance)
	}
	// curSum = 10·1 + 10·8 = 90, lbSum = 20 (no decay).
	if math.Abs(r.CostRatio-4.5) > 1e-12 {
		t.Errorf("cost ratio = %v, want 4.5", r.CostRatio)
	}
	if !r.Drifted {
		t.Error("drift not detected")
	}
	if r.Fresh != 1 {
		t.Errorf("fresh = %d, want 1", r.Fresh)
	}

	// Rebase resets both signals.
	m.Rebase(nil)
	r = m.Drift()
	if r.Drifted || r.Distance != 0 {
		t.Errorf("post-rebase report %+v", r)
	}
}

func TestMinObservedGatesDrift(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{MinObserved: 50, DistThreshold: 0.1}, clk.now)
	a := q1()
	m.Observe(a)
	m.Rebase(nil)
	b := q1()
	b.Name = "B"
	b.Targets = []string{"z", "w"}
	for i := 0; i < 30; i++ {
		m.Observe(b)
	}
	if r := m.Drift(); r.Drifted {
		t.Fatalf("drifted on %d < 50 observations: %+v", r.Observed, r)
	}
	for i := 0; i < 30; i++ {
		m.Observe(b)
	}
	if r := m.Drift(); !r.Drifted {
		t.Fatalf("no drift after threshold met: %+v", r)
	}
}

// TestIncrementalCostSumsMatchRecomputation pins the O(1) sum maintenance
// to the Σ rate·cost recomputation over the template table.
func TestIncrementalCostSumsMatchRecomputation(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{HalfLife: 7}, clk.now)
	pool := ssb.Queries()
	m.Rebase(func(q *query.Query) (float64, float64) {
		return 2 + float64(len(q.Predicates)), 1 + float64(len(q.Targets))
	})
	for i := 0; i < 200; i++ {
		clk.t = float64(i) * 0.37
		m.Observe(pool[(i*5)%len(pool)])
	}
	cur, lb := m.CostSums()
	var wantCur, wantLB float64
	for _, info := range m.Templates() {
		wantCur += info.Rate * info.CurCost
		wantLB += info.Rate * info.LBCost
	}
	if math.Abs(cur-wantCur) > 1e-9*math.Max(1, wantCur) {
		t.Errorf("incremental curSum %v != recomputed %v", cur, wantCur)
	}
	if math.Abs(lb-wantLB) > 1e-9*math.Max(1, wantLB) {
		t.Errorf("incremental lbSum %v != recomputed %v", lb, wantLB)
	}
}

func TestMaxTemplatesEvictsLowestRate(t *testing.T) {
	clk := &fakeClock{}
	m := mustNew(t, Config{HalfLife: 10, MaxTemplates: 2}, clk.now)
	mk := func(name string, targets ...string) *query.Query {
		q := q1()
		q.Name = name
		q.Targets = targets
		return q
	}
	a, b, c := mk("A", "t1"), mk("B", "t2"), mk("C", "t3")
	for i := 0; i < 5; i++ {
		m.Observe(a)
	}
	m.Observe(b)
	m.Observe(c) // table over budget: B (rate 1, older than C) is evicted
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	names := m.Snapshot().Names()
	if !reflect.DeepEqual(names, []string{"A", "C"}) {
		t.Errorf("survivors = %v, want [A C]", names)
	}
}

// TestTemplatingDeterminism is the satellite guarantee: replaying the same
// stream against the same clock schedule produces an identical template
// table (keys, rates, counts, bindings) and identical drift decisions.
// Run under -race in CI, it also documents that a monitor is safe to share.
func TestTemplatingDeterminism(t *testing.T) {
	base := ssb.Queries()
	aug := ssb.AugmentedQueries()
	run := func() ([]TemplateInfo, []DriftReport, query.Workload) {
		clk := &fakeClock{}
		m := mustNew(t, Config{HalfLife: 3, Reservoir: 4, MinObserved: 8, DistThreshold: 0.2}, clk.now)
		m.Rebase(func(q *query.Query) (float64, float64) {
			return float64(2 + len(q.Predicates)), 1
		})
		var reports []DriftReport
		for i := 0; i < 300; i++ {
			clk.t = float64(i) * 0.05
			pool := base
			if i >= 150 {
				pool = aug
			}
			m.Observe(pool[(i*7)%len(pool)])
			if i%25 == 24 {
				reports = append(reports, m.Drift())
			}
		}
		return m.Templates(), reports, m.Snapshot()
	}
	t1, r1, s1 := run()
	t2, r2, s2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("template tables differ across identical replays")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("drift decisions differ across identical replays")
	}
	if len(s1) != len(s2) {
		t.Fatalf("snapshot sizes differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Weight != s2[i].Weight {
			t.Fatalf("snapshot entry %d differs: %s/%v vs %s/%v",
				i, s1[i].Name, s1[i].Weight, s2[i].Name, s2[i].Weight)
		}
	}
	// The drifting stream must actually have drifted by the end, and the
	// augmented phase must have contributed fresh templates.
	last := r1[len(r1)-1]
	if !last.Drifted {
		t.Errorf("augmented shift not detected: %+v", last)
	}
	if last.Fresh == 0 {
		t.Error("no fresh templates after the augmented shift")
	}
}

// TestPrimeRatesContinuesEWMA: a monitor primed with another monitor's
// snapshot starts from that snapshot's decayed rates — Snapshot round-trips
// — and, after Rebase, steady traffic matching the snapshot reads as zero
// drift. This is the resume-after-crash contract: a restarted monitor
// continues the crashed monitor's trajectory instead of slamming to its
// first few observations.
func TestPrimeRatesContinuesEWMA(t *testing.T) {
	clk := &fakeClock{}
	cfg := Config{HalfLife: 10, MinObserved: 1}

	// Source monitor observes a skewed mix.
	src := mustNew(t, cfg, clk.now)
	a, b := q1(), q1()
	b.Name = "B"
	b.Targets = []string{"w"}
	for i := 0; i < 9; i++ {
		src.Observe(a)
	}
	src.Observe(b)
	snap := src.Snapshot()

	// Restarted monitor primed with the snapshot reproduces its rates.
	dst := mustNew(t, cfg, clk.now)
	dst.PrimeRates(snap)
	dst.Rebase(nil)
	got := dst.Snapshot()
	if len(got) != len(snap) {
		t.Fatalf("primed snapshot has %d templates, want %d", len(got), len(snap))
	}
	for i := range snap {
		if math.Abs(got[i].Weight-snap[i].Weight) > 1e-12 {
			t.Errorf("template %d rate %v, want %v", i, got[i].Weight, snap[i].Weight)
		}
	}

	// Steady traffic in the snapshot's proportions stays un-drifted.
	for r := 0; r < 4; r++ {
		for i := 0; i < 9; i++ {
			dst.Observe(a)
			clk.t += 0.01
		}
		dst.Observe(b)
		clk.t += 0.01
	}
	if rep := dst.Drift(); rep.Drifted || rep.Distance > 0.1 {
		t.Errorf("steady mix drifted on a primed monitor: %s", rep)
	}

	// Priming an existing template adds to its live rate, not a duplicate.
	n := dst.Len()
	dst.PrimeRates(snap)
	if dst.Len() != n {
		t.Errorf("re-priming created duplicate templates (%d -> %d)", n, dst.Len())
	}
}
