// Package coradd is the public API of the CORADD reproduction — the
// correlation-aware database designer for materialized views and indexes
// of Kimura, Huo, Rasin, Madden and Zdonik (PVLDB 3(1), 2010).
//
// The package re-exports the library's primary types from the internal
// implementation packages via aliases, so downstream users need only this
// import:
//
//	rel := coradd.GenerateSSB(coradd.SSBConfig{Rows: 200_000, Seed: 1})
//	w := coradd.SSBQueries()
//	sys, _ := coradd.NewSystem(rel, w, coradd.SystemConfig{PKCols: []string{"orderkey"}})
//	design, _ := sys.Design(4 * rel.HeapBytes()) // 4x-heap space budget
//	result, _ := sys.Measure(design)             // simulated runtimes
//
// The pipeline underneath is the paper's: statistics collection with
// selectivity propagation (§4.1), MV candidate generation by query
// grouping and interleaved clustered-key merging (§4.2), fact-table
// re-clustering (§4.3), exact ILP selection (§5), ILP feedback (§6), and
// correlation-map secondary indexes (Appendix A-1). See DESIGN.md for the
// full inventory and EXPERIMENTS.md for the reproduced evaluation.
package coradd

import (
	"fmt"

	"coradd/internal/adapt"
	"coradd/internal/apb"
	"coradd/internal/candgen"
	"coradd/internal/cm"
	"coradd/internal/corridx"
	"coradd/internal/costmodel"
	"coradd/internal/deploy"
	"coradd/internal/designer"
	"coradd/internal/durable"
	"coradd/internal/exec"
	"coradd/internal/fault"
	"coradd/internal/feedback"
	"coradd/internal/obs"
	"coradd/internal/query"
	"coradd/internal/schema"
	"coradd/internal/server"
	"coradd/internal/ssb"
	"coradd/internal/stats"
	"coradd/internal/storage"
	"coradd/internal/tenant"
	"coradd/internal/value"
	"coradd/internal/workload"
)

// Core data types.
type (
	// Relation is a clustered heap file (a table or a materialized view).
	Relation = storage.Relation
	// Schema describes a relation's columns.
	Schema = schema.Schema
	// Column is one attribute with its logical byte width.
	Column = schema.Column
	// Query is one workload query (predicates, targets, aggregate).
	Query = query.Query
	// Predicate restricts one attribute (equality, range or IN).
	Predicate = query.Predicate
	// Workload is an ordered set of queries.
	Workload = query.Workload
	// Stats holds the collected statistics a designer runs on.
	Stats = stats.Stats
	// Design is a completed physical design.
	Design = designer.Design
	// Designer produces designs for varying budgets (CORADD, Commercial,
	// Naive all implement it).
	Designer = designer.Designer
	// MVDesign is one recommended object (MV or fact re-clustering).
	MVDesign = costmodel.MVDesign
	// DiskParams converts simulated I/O into seconds.
	DiskParams = storage.DiskParams
	// IOStats is accumulated plan I/O (seeks, pages read).
	IOStats = storage.IOStats
	// RunResult is a measured design (per-query simulated seconds).
	RunResult = designer.RunResult
	// CM is a correlation map, the paper's compressed secondary index.
	CM = cm.CM
	// CorrIndex is a correlation-exploiting secondary index (Hermit-style):
	// a bucketed range mapping from a target column onto the clustered
	// lead, with an outlier B+Tree for rows that break the mapping.
	CorrIndex = corridx.Index
	// CorrIdxConfig tunes correlation-index construction.
	CorrIdxConfig = corridx.Config
	// Object is a materialized design object with its indexes and CMs.
	Object = exec.Object
	// MigrationPlan is an ordered build schedule migrating one design into
	// another while the workload keeps running (internal/deploy).
	MigrationPlan = designer.MigrationPlan
	// MigrationStep is one build of a migration plan.
	MigrationStep = designer.MigrationStep
	// DeployOptions tunes the deployment scheduler's branch-and-bound.
	DeployOptions = deploy.Options
	// DeploySchedule is a solved (or explicitly evaluated) build order
	// with its cumulative-cost accounting.
	DeploySchedule = deploy.Schedule
	// WorkloadMonitor is the online workload monitor: query templating,
	// EWMA frequency tracking, recent literal bindings and deterministic
	// drift detection (internal/workload).
	WorkloadMonitor = workload.Monitor
	// MonitorConfig tunes a WorkloadMonitor (half-life, reservoir size,
	// drift thresholds).
	MonitorConfig = workload.Config
	// DriftReport is one drift decision with its evidence.
	DriftReport = workload.DriftReport
	// TemplateInfo is one observed query template's public view.
	TemplateInfo = workload.TemplateInfo
	// AdaptiveController runs the observe → drift → redesign → migrate →
	// replan loop over a stream of executed queries (internal/adapt).
	AdaptiveController = adapt.Controller
	// AdaptiveConfig tunes the adaptive controller.
	AdaptiveConfig = adapt.Config
	// AdaptiveReport is the controller's telemetry (trace, counters,
	// cumulative workload-seconds).
	AdaptiveReport = adapt.Report
	// AdaptiveEvent is one trace entry of an adaptive run.
	AdaptiveEvent = adapt.Event
	// FaultInjector is the deterministic fault layer (internal/fault): a
	// nil injector disables every fault path, byte for byte. Wire one into
	// AdaptiveConfig.Faults to fail/delay builds, time out solves and
	// crash migrations on a replayable schedule.
	FaultInjector = fault.Injector
	// FaultConfig is the injected fault schedule (seeded probabilities,
	// per-build caps, crash points).
	FaultConfig = fault.Config
	// RetryPolicy is the capped exponential backoff failed builds retry
	// under (AdaptiveConfig.Retry; zero value = the defaults).
	RetryPolicy = fault.RetryPolicy
	// MigrationJournal is a migration's durable step journal: enough to
	// resume an interrupted migration from the completed prefix
	// (AdaptiveController.Journal, ResumeAdaptive).
	MigrationJournal = deploy.Journal
	// Checkpoint is the adaptive controller's persisted crash-state: the
	// active design, the in-flight migration journal and the monitor
	// snapshot (internal/durable). Saved with write-temp-fsync-rename and
	// a checksum; LoadCheckpoint rejects torn or foreign files loudly.
	Checkpoint = durable.Checkpoint
	// Server is the durable serving daemon core (internal/server):
	// concurrent query execution against an atomic design snapshot, panic
	// recovery, request timeouts, token-bucket load shedding, health and
	// readiness probes, graceful drain, and crash-state checkpointing.
	Server = server.Server
	// ServerConfig tunes a Server (admission rate, request timeout,
	// checkpoint path and cadence, the adaptive tuning underneath).
	ServerConfig = server.Config
	// ServerStatus is the daemon's observable state (/statusz).
	ServerStatus = server.Status
	// MetricsRegistry is the dependency-free metrics registry
	// (internal/obs): counters, gauges and log-linear latency histograms
	// with Prometheus text exposition. Wire one into ServerConfig.Metrics
	// (or AdaptiveConfig.Metrics) and serve it at /metrics; nil disables
	// every update at zero cost.
	MetricsRegistry = obs.Registry
	// EventTracer is the bounded-ring structured event trace
	// (internal/obs): typed simulated-clock events from the adaptive
	// controller, rendered in /statusz. nil disables it.
	EventTracer = obs.Tracer
	// TraceEvent is one recorded tracer event.
	TraceEvent = obs.Event
	// TenantCoordinator is the multi-tenant design coordinator
	// (internal/tenant): N per-tenant workload monitors feed mined
	// candidate pools, and one shared space budget is split across tenants
	// by Lagrangian decomposition — dual ascent on a single multiplier λ
	// with per-tenant penalized ILP subproblems — with a reported duality
	// gap, falling back to a monolithic pooled exact solve when small.
	TenantCoordinator = tenant.Coordinator
	// TenantConfig tunes a TenantCoordinator (global budget, mining
	// thresholds, dual iterations, the monolithic-fallback limit).
	TenantConfig = tenant.Config
	// Tenant is one registered tenant workload: its monitor and its
	// accumulated mined candidate pool.
	Tenant = tenant.Tenant
	// TenantAllocation is one shared-budget redesign outcome: per-tenant
	// designs with their budget shares plus the dual's certificate
	// (λ, duality gap, iteration and node counts).
	TenantAllocation = tenant.Allocation
	// TenantResult is one tenant's slice of a TenantAllocation.
	TenantResult = tenant.TenantResult
)

// ErrCrash is the injected-crash sentinel: an AdaptiveController whose
// Process returns an error wrapping ErrCrash died mid-migration with its
// journal intact — rebuild it with System.ResumeAdaptive.
var ErrCrash = fault.ErrCrash

// Checkpoint error sentinels: a checkpoint that failed structural or
// checksum validation, and one written by a layout this build does not
// read. Both demand operator attention — never a silent cold restart.
var (
	ErrCheckpointCorrupt = durable.ErrCorrupt
	ErrCheckpointVersion = durable.ErrVersion
)

// CaptureCheckpoint snapshots an adaptive controller's durable state.
// Call it from the goroutine driving the controller, never concurrently
// with Process.
func CaptureCheckpoint(c *AdaptiveController) (*Checkpoint, error) { return durable.Capture(c) }

// SaveCheckpoint persists a checkpoint with the write-temp-fsync-rename
// protocol: a crash mid-save leaves the previous checkpoint intact.
func SaveCheckpoint(path string, cp *Checkpoint) error { return durable.Save(path, cp) }

// LoadCheckpoint reads and validates a checkpoint. A missing file
// returns os.ErrNotExist (a fresh start); torn, truncated, bit-flipped
// or foreign files fail with ErrCheckpointCorrupt, unknown layout
// versions with ErrCheckpointVersion.
func LoadCheckpoint(path string) (*Checkpoint, error) { return durable.Load(path) }

// NewFaultInjector builds a deterministic fault injector from a schedule.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventTracer builds a bounded-ring event tracer keeping the most
// recent capacity events (capacity <= 0 uses the default, 256).
func NewEventTracer(capacity int) *EventTracer { return obs.NewTracer(capacity) }

// Value types: all attribute values are int64-coded (string attributes are
// dictionary-coded per column; see internal/value).
type (
	// V is one attribute value.
	V = value.V
	// Row is one tuple.
	Row = value.Row
	// PlanSpec names one access path on an object.
	PlanSpec = exec.PlanSpec
	// ExecResult is the outcome of executing a query on an object.
	ExecResult = exec.Result
	// GroupedResult is a per-group aggregate execution result.
	GroupedResult = exec.GroupedResult
	// GroupCell is one group of a grouped aggregate.
	GroupCell = exec.GroupCell
	// MultiFact bundles one fact table's inputs for multi-fact design.
	MultiFact = designer.Fact
	// MultiDesign is a combined design over several fact tables.
	MultiDesign = designer.MultiDesign
	// Correlation is one discovered soft functional dependency.
	Correlation = stats.Correlation
)

// Predicate constructors.
var (
	// Eq builds col = v.
	Eq = query.NewEq
	// Range builds lo ≤ col ≤ hi.
	Range = query.NewRange
	// In builds col ∈ {vs...}.
	In = query.NewIn
)

// NewSchema builds a schema from columns (names must be unique).
func NewSchema(cols ...Column) *Schema { return schema.New(cols...) }

// fillCandidateDefaults substitutes the paper's tuning for every unset
// candidate-generation knob individually, so a caller who sets only a
// feature switch (CorrIdx, GroupWorkers) or a single knob (Seed) keeps
// it alongside the defaults.
func fillCandidateDefaults(c candgen.Config) candgen.Config {
	def := candgen.DefaultConfig()
	if c.T == 0 {
		c.T = def.T
	}
	if len(c.Alphas) == 0 {
		c.Alphas = def.Alphas
	}
	if c.MaxKeyLen == 0 {
		c.MaxKeyLen = def.MaxKeyLen
	}
	if c.MaxInterleavings == 0 {
		c.MaxInterleavings = def.MaxInterleavings
	}
	if c.Restarts == 0 {
		c.Restarts = def.Restarts
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	return c
}

// NewRelation builds a clustered heap file, sorting rows on clusterKey
// (column positions). It takes ownership of rows.
func NewRelation(name string, s *Schema, clusterKey []int, rows []Row) *Relation {
	return storage.NewRelation(name, s, clusterKey, rows)
}

// NewObject wraps a relation as a materialized design object ready for
// secondary indexes, correlation maps and query execution.
func NewObject(rel *Relation) *Object { return exec.NewObject(rel) }

// BuildCM builds a correlation map over rel keyed on the named columns
// with the given bucket widths (width 1 = exact values). pagesPerBucket ≤ 0
// selects the default clustered bucketing (20 pages).
func BuildCM(rel *Relation, cols []string, widths []V, pagesPerBucket int) *CM {
	return cm.Build(rel, rel.Schema.ColSet(cols...), widths, pagesPerBucket)
}

// DesignCM runs the CM Designer (paper A-1.2) for one query on rel,
// returning the fastest correlation map within the default 1 MB limit, or
// nil when none helps.
func DesignCM(rel *Relation, q *Query) *CM {
	return cm.Design(rel, q, cm.DefaultDesignerConfig())
}

// BuildCorrIdx learns a correlation index on rel for the named target
// column: predicates on it are answered by translation into value ranges
// on rel's clustered lead plus outlier probes. Fails when rel has no
// clustered key or the target is the lead itself. Enable corridx
// candidates in the designer with SystemConfig.Candidates.CorrIdx.
func BuildCorrIdx(rel *Relation, target string) (*CorrIndex, error) {
	return corridx.Build(rel, rel.Schema.MustCol(target), corridx.DefaultConfig())
}

// BuildFromObject materializes a new design relation by scanning src —
// the deployment scheduler's build-from-object path: an index or
// narrower MV is constructed from an already-deployed MV instead of
// re-reading the fact table. cols are column positions in src's schema,
// newKey the clustered key in the new schema. Returns the relation and
// the simulated build I/O (the heap component of the scheduler's
// build-cost model).
func BuildFromObject(src *Object, name string, cols []int, newKey []int) (*Relation, IOStats) {
	return exec.BuildFrom(src, name, cols, newKey)
}

// ExecuteBest runs q on o through the cheapest feasible plan and returns
// the result with its simulated I/O.
func ExecuteBest(o *Object, q *Query, disk DiskParams) (ExecResult, error) {
	return exec.Best(o, q, disk)
}

// Execute runs q on o with an explicit plan.
func Execute(o *Object, q *Query, spec PlanSpec) (ExecResult, error) {
	return exec.Execute(o, q, spec)
}

// DefaultDisk returns the disk model used throughout the paper's
// reproduction (5.5 ms seeks, ~80 MB/s sequential reads).
func DefaultDisk() DiskParams { return storage.DefaultDiskParams() }

// NewStats scans rel once and returns the designer statistics (exact
// single-column cardinalities, histograms, a random synopsis).
func NewStats(rel *Relation, sampleSize int, seed int64) *Stats {
	return stats.New(rel, sampleSize, seed)
}

// ExecuteGrouped runs q on o with the chosen plan, aggregating per
// distinct combination of the groupBy columns (the paper's GROUP BY
// queries). I/O accounting matches Execute.
func ExecuteGrouped(o *Object, q *Query, spec PlanSpec, groupBy []string) (*GroupedResult, error) {
	return exec.ExecuteGrouped(o, q, spec, groupBy)
}

// NewMultiSystem builds per-fact CORADD designers over a workload spanning
// several fact tables, splitting budgets in proportion to heap sizes
// (§7.1). Use designer.SplitQuery to break two-fact queries into per-fact
// parts first.
func NewMultiSystem(facts map[string]MultiFact, w Workload, cfg SystemConfig) (*designer.Multi, error) {
	if cfg.Disk == (DiskParams{}) {
		cfg.Disk = storage.DefaultDiskParams()
	}
	cfg.Candidates = fillCandidateDefaults(cfg.Candidates)
	fb := feedback.Config{MaxIters: cfg.FeedbackIters}
	if cfg.FeedbackIters == 0 {
		fb.MaxIters = 2
	}
	return designer.NewMulti(facts, w, cfg.Disk, cfg.Candidates, fb)
}

// Plan-kind constants for Execute.
const (
	SeqScan       = exec.SeqScan
	ClusteredScan = exec.ClusteredScan
	SecondaryScan = exec.SecondaryScan
	CMScan        = exec.CMScan
	CorrIdxScan   = exec.CorrIdxScan
)

// Benchmark generators.
type (
	// SSBConfig sizes the Star Schema Benchmark generator.
	SSBConfig = ssb.Config
	// APBConfig sizes the APB-1 generator.
	APBConfig = apb.Config
)

// GenerateSSB builds the denormalized SSB lineorder relation.
func GenerateSSB(cfg SSBConfig) *Relation { return ssb.Generate(cfg) }

// SSBQueries returns the 13 standard SSB queries.
func SSBQueries() Workload { return ssb.Queries() }

// SSBAugmentedQueries returns the paper's 52-query augmented workload.
func SSBAugmentedQueries() Workload { return ssb.AugmentedQueries() }

// GenerateAPB builds the denormalized APB-1 sales relation.
func GenerateAPB(cfg APBConfig) *Relation { return apb.Generate(cfg) }

// APBQueries returns the 31 APB-1 template queries.
func APBQueries() Workload { return apb.Queries() }

// SystemConfig tunes a System.
type SystemConfig struct {
	// PKCols are the fact table's primary-key column names (used for the
	// extra index a re-clustered fact must carry). Defaults to the
	// relation's current clustered key.
	PKCols []string
	// SampleSize is the statistics synopsis size (default 4096).
	SampleSize int
	// Seed drives sampling and grouping determinism (default 1).
	Seed int64
	// FeedbackIters is the number of ILP-feedback iterations (default 2;
	// -1 disables feedback).
	FeedbackIters int
	// Candidates overrides candidate-generation tuning; zero value means
	// the paper defaults.
	Candidates candgen.Config
	// Disk overrides the disk model; zero value means the defaults
	// (5.5 ms seek, ~80 MB/s sequential).
	Disk DiskParams
}

// System is the ready-to-use designer over one fact table and workload.
type System struct {
	Fact *Relation
	W    Workload
	St   *Stats
	Disk DiskParams

	coradd    *designer.CORADD
	evaluator *designer.Evaluator
}

// NewSystem collects statistics over rel and prepares the CORADD designer
// for the workload.
func NewSystem(rel *Relation, w Workload, cfg SystemConfig) (*System, error) {
	if rel == nil || len(w) == 0 {
		return nil, fmt.Errorf("coradd: relation and workload are required")
	}
	if cfg.SampleSize <= 0 {
		cfg.SampleSize = stats.DefaultSampleSize
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Disk == (DiskParams{}) {
		cfg.Disk = storage.DefaultDiskParams()
	}
	cfg.Candidates = fillCandidateDefaults(cfg.Candidates)
	if cfg.FeedbackIters == 0 {
		cfg.FeedbackIters = 2
	}
	pk := rel.ClusterKey
	if len(cfg.PKCols) > 0 {
		pk = rel.Schema.ColSet(cfg.PKCols...)
	}
	st := stats.New(rel, cfg.SampleSize, cfg.Seed)
	common := designer.Common{
		St: st, W: w, Disk: cfg.Disk, PKCols: pk, BaseKey: rel.ClusterKey,
	}
	s := &System{Fact: rel, W: w, St: st, Disk: cfg.Disk}
	s.coradd = designer.NewCORADD(common, cfg.Candidates, feedback.Config{MaxIters: cfg.FeedbackIters})
	s.evaluator = designer.NewEvaluator(rel, w, cfg.Disk)
	return s, nil
}

// Design produces the CORADD design for the given space budget in bytes.
func (s *System) Design(budget int64) (*Design, error) {
	return s.coradd.Design(budget)
}

// Measure materializes a design on the simulated substrate and executes
// every workload query, returning per-query and total simulated runtimes.
func (s *System) Measure(d *Design) (*RunResult, error) {
	return s.evaluator.Measure(d)
}

// Baselines returns ready-made Commercial and Naive designers over the
// same inputs, for comparisons like the paper's Figures 9 and 11.
func (s *System) Baselines(cfg SystemConfig) (commercial, naive designer.Designer) {
	cfg.Candidates = fillCandidateDefaults(cfg.Candidates)
	common := designer.Common{
		St: s.St, W: s.W, Disk: s.Disk,
		PKCols: s.coradd.PKCols, BaseKey: s.coradd.BaseKey,
	}
	com := designer.NewCommercial(common, cfg.Candidates)
	s.evaluator.Commercial = com
	return com, designer.NewNaive(common, cfg.Candidates)
}

// PlanMigration schedules the builds that turn the deployed design from
// into design to while this system's workload keeps running, minimizing
// cumulative workload cost over the deployment window (the evolving-
// workload story: design each phase with Design, then schedule the
// migration with the *new* phase's System). from may be nil for a fresh
// deployment. Both designs must be over this system's fact relation.
func (s *System) PlanMigration(from, to *Design, opts DeployOptions) (*MigrationPlan, error) {
	return designer.PlanMigration(s.St, s.Disk, s.W, s.coradd.Model, from, to, opts)
}

// MigrationPrefix assembles the intermediate design the workload runs on
// after the given builds of a migration plan (indexes into plan.Builds)
// are deployed: the kept objects plus that prefix, routed by this
// system's cost model. Measure it to trace a schedule's real
// cumulative-cost curve.
func (s *System) MigrationPrefix(plan *MigrationPlan, deployed []int) *Design {
	return plan.PrefixDesign(s.coradd.Model, s.W, deployed)
}

// EvaluateSchedule prices an explicit build order on a migration plan's
// scheduling problem — the tool for comparing naive deployment orders
// (arbitrary, size-ascending) against the solved schedule.
func EvaluateSchedule(plan *MigrationPlan, order []int) (*DeploySchedule, error) {
	return deploy.Evaluate(plan.Problem, order)
}

// NewWorkloadMonitor builds an online workload monitor with the given
// clock (seconds; inject a fake for deterministic replays). Feed it the
// executed query stream with Observe, read Drift for redesign decisions
// and Snapshot for the decayed workload a redesign should solve for.
// A nil clock is a configuration error, reported rather than panicking.
func NewWorkloadMonitor(cfg MonitorConfig, clock func() float64) (*WorkloadMonitor, error) {
	return workload.New(cfg, clock)
}

// Adaptive builds the adaptive redesign controller over this system:
// initial is the currently deployed design (e.g. the result of Design for
// the mix being served today) and cfg.Budget the space budget every
// drift-triggered redesign solves for. Unset candidate/feedback tuning
// inherits the system's. Drive it with Process/Run over the live query
// stream; see internal/adapt for the loop's semantics.
func (s *System) Adaptive(initial *Design, cfg AdaptiveConfig) (*AdaptiveController, error) {
	cfg.Cand = fillCandidateDefaults(cfg.Cand)
	if cfg.FB.MaxIters == 0 {
		cfg.FB.MaxIters = s.coradd.Feedback.MaxIters
	}
	return adapt.New(s.coradd.Common, initial, cfg)
}

// ResumeAdaptive rebuilds an adaptive controller after a crash (an
// AdaptiveController.Process error wrapping ErrCrash): w is the workload
// the resumed controller redesigns for — typically the crashed
// controller's Mon.Snapshot() — to the design the journaled migration was
// deploying (the crashed controller's Incumbent), and j its step journal.
// The resumed migration follows the journaled build order from the
// completed prefix; the monitor is re-seeded from w so drift detection
// continues the crashed trajectory instead of restarting cold.
func (s *System) ResumeAdaptive(w Workload, to *Design, j *MigrationJournal, cfg AdaptiveConfig) (*AdaptiveController, error) {
	cfg.Cand = fillCandidateDefaults(cfg.Cand)
	if cfg.FB.MaxIters == 0 {
		cfg.FB.MaxIters = s.coradd.Feedback.MaxIters
	}
	common := s.coradd.Common
	common.W = w
	return adapt.Resume(common, to, j, cfg)
}

// ServeAdaptive assembles the durable serving daemon core over this
// system: a Server executing catalog queries concurrently against the
// deployed design while the adaptive controller runs on its own
// goroutine. cp non-nil resumes from a loaded checkpoint (the design,
// journal and monitor snapshot it carries); otherwise initial is the
// cold-start deployed design. The returned server is started — wire
// srv.Handler() into an http.Server and call srv.Shutdown on SIGTERM.
// For staged boot (probes answering while data generation runs), use
// internal/server's NewStarting/Attach directly from the daemon.
func (s *System) ServeAdaptive(initial *Design, cp *Checkpoint, cfg ServerConfig) (*Server, error) {
	cfg.Adapt.Cand = fillCandidateDefaults(cfg.Adapt.Cand)
	if cfg.Adapt.FB.MaxIters == 0 {
		cfg.Adapt.FB.MaxIters = s.coradd.Feedback.MaxIters
	}
	srv := server.NewStarting(cfg)
	if cp != nil {
		ctl, err := cp.Controller(s.coradd.Common, srv.AdaptConfig())
		if err != nil {
			return nil, err
		}
		srv.AttachResumed(s.coradd.Common, ctl)
	} else {
		ctl, err := adapt.New(s.coradd.Common, initial, srv.AdaptConfig())
		if err != nil {
			return nil, err
		}
		srv.Attach(s.coradd.Common, ctl)
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}

// MultiTenant builds a multi-tenant design coordinator: register tenant
// workloads with AddTenant (or TenantCoordinator.Add over any substrate),
// feed their query streams through Tenant.Observe, and each Redesign
// splits cfg.Budget across all tenants at once — by Lagrangian dual
// ascent over per-tenant subproblems, with the reported duality gap
// bounding the distance to the pooled optimum.
func MultiTenant(cfg TenantConfig) *TenantCoordinator { return tenant.New(cfg) }

// AddTenant registers a tenant running this system's fact table and
// statistics under co, monitored on the injected clock (seconds; inject a
// fake for deterministic replays). The tenant's workload is whatever its
// monitor observes — this system's configured workload is not consulted.
func (s *System) AddTenant(co *TenantCoordinator, name string, mcfg MonitorConfig, clock func() float64) (*Tenant, error) {
	return co.Add(name, s.coradd.Common, mcfg, clock)
}

// DiscoverCorrelations runs the CORDS-style discovery pass over the fact
// table, returning soft functional dependencies of at least minStrength
// (0 selects the default threshold), strongest first.
func (s *System) DiscoverCorrelations(minStrength float64) []Correlation {
	return s.St.DiscoverCorrelations(stats.DiscoverOptions{MinStrength: minStrength})
}

// Strength exposes the CORDS correlation strength statistic
// strength(from → to) = |from| / |from,to| over column names.
func (s *System) Strength(from, to string) float64 {
	return s.St.Strength(
		[]int{s.Fact.Schema.MustCol(from)},
		[]int{s.Fact.Schema.MustCol(to)},
	)
}
