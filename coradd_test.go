package coradd

import (
	"testing"
)

func quickSystem(t testing.TB) (*Relation, *System) {
	t.Helper()
	rel := GenerateSSB(SSBConfig{Rows: 30000, Customers: 900, Suppliers: 150, Parts: 700, Seed: 5})
	sys, err := NewSystem(rel, SSBQueries(), SystemConfig{
		SampleSize: 1024, Seed: 2, FeedbackIters: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rel, sys
}

func TestSystemEndToEnd(t *testing.T) {
	rel, sys := quickSystem(t)
	budget := 3 * rel.HeapBytes()
	design, err := sys.Design(budget)
	if err != nil {
		t.Fatal(err)
	}
	if design.Size > budget {
		t.Errorf("design size %d over budget %d", design.Size, budget)
	}
	res, err := sys.Measure(design)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerQuery) != len(sys.W) {
		t.Fatalf("per-query results = %d", len(res.PerQuery))
	}
	for qi, sec := range res.PerQuery {
		if sec <= 0 {
			t.Errorf("query %d measured %vs", qi, sec)
		}
	}
}

func TestSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, SSBQueries(), SystemConfig{}); err == nil {
		t.Error("nil relation accepted")
	}
	rel := GenerateSSB(SSBConfig{Rows: 100, Customers: 10, Suppliers: 5, Parts: 10, Seed: 1})
	if _, err := NewSystem(rel, nil, SystemConfig{}); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestStrengthFacade(t *testing.T) {
	_, sys := quickSystem(t)
	if s := sys.Strength("yearmonth", "year"); s < 0.95 {
		t.Errorf("strength(yearmonth→year) = %v", s)
	}
	if s := sys.Strength("year", "yearmonth"); s > 0.3 {
		t.Errorf("strength(year→yearmonth) = %v, want weak", s)
	}
}

func TestFacadeExecutionHelpers(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", ByteSize: 4},
		Column{Name: "b", ByteSize: 4},
		Column{Name: "v", ByteSize: 8},
	)
	rows := make([]Row, 10000)
	for i := range rows {
		a := V(i % 50)
		rows[i] = Row{a, a / 5, V(i)}
	}
	rel := NewRelation("t", s, s.ColSet("a"), rows)
	obj := NewObject(rel)
	q := &Query{Name: "q", Fact: "t", Predicates: []Predicate{Eq("b", 3)}, AggCol: "v"}

	m := BuildCM(rel, []string{"b"}, []V{1}, 0)
	obj.AddCM(m)

	seq, err := Execute(obj, q, PlanSpec{Kind: SeqScan})
	if err != nil {
		t.Fatal(err)
	}
	cmRes, err := Execute(obj, q, PlanSpec{Kind: CMScan})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sum != cmRes.Sum {
		t.Errorf("CM answer %d != seqscan %d", cmRes.Sum, seq.Sum)
	}
	best, err := ExecuteBest(obj, q, DefaultDisk())
	if err != nil {
		t.Fatal(err)
	}
	if best.Seconds(DefaultDisk()) > seq.Seconds(DefaultDisk()) {
		t.Error("ExecuteBest worse than seqscan")
	}
}

func TestBaselinesFacade(t *testing.T) {
	rel, sys := quickSystem(t)
	commercial, naive := sys.Baselines(SystemConfig{})
	budget := 2 * rel.HeapBytes()
	for _, d := range []Designer{commercial, naive} {
		design, err := d.Design(budget)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if design.Size > budget {
			t.Errorf("%s design over budget", d.Name())
		}
		if _, err := sys.Measure(design); err != nil {
			t.Fatalf("%s: measure: %v", d.Name(), err)
		}
	}
}
