// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment; see DESIGN.md §4 for the index). Each
// iteration runs the full experiment; the interesting output is the
// experiment's own table, which `go run ./cmd/experiments` prints, while
// these benches give wall-clock and allocation profiles of the pipeline.
package coradd

import (
	"sync"
	"testing"

	"coradd/internal/exp"
)

var (
	benchOnce   sync.Once
	benchSSB    *exp.Env
	benchSSBAug *exp.Env
	benchAPB    *exp.Env
)

func benchEnvs() (*exp.Env, *exp.Env, *exp.Env) {
	benchOnce.Do(func() {
		s := exp.QuickScale()
		benchSSB = exp.NewSSBEnv(s, false)
		benchSSBAug = exp.NewSSBEnv(s, true)
		benchAPB = exp.NewAPBEnv(s)
	})
	return benchSSB, benchSSBAug, benchAPB
}

func BenchmarkTable1SelectivityVectors(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = exp.SelectivityVectors(env)
	}
}

func BenchmarkTable2Propagation(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range env.W {
			_ = env.St.PropagatedVector(q)
		}
	}
}

func BenchmarkFig5ILPvsGreedy(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = exp.ILPVersusGreedy(env)
	}
}

func BenchmarkFig6ILPScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = exp.ILPSolverScaling([]int{1000, 2500, 5000}, 52, 7)
	}
}

func BenchmarkFig7Feedback(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.FeedbackVersusOPT(env, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9APB(b *testing.B) {
	_, _, apbEnv := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.APBComparison(apbEnv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10CostModelError(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = exp.CostModelError(env)
	}
}

func BenchmarkFig11SSB(b *testing.B) {
	_, aug, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.SSBComparison(aug); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigA2AccessGap(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = exp.AccessPatternGap(env)
	}
}

func BenchmarkFig14Maintenance(b *testing.B) {
	cfg := exp.DefaultMaintenanceConfig()
	for i := 0; i < b.N; i++ {
		_, _ = exp.MaintenanceCost(cfg)
	}
}

func BenchmarkExtensionA3UpdateCost(b *testing.B) {
	cfg := exp.DefaultUpdateCostConfig()
	for i := 0; i < b.N; i++ {
		_, _ = exp.UpdateCostCMvsBTree(cfg)
	}
}

func BenchmarkAblationRelaxation(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = exp.RelaxationError(env, 40)
	}
}

func BenchmarkAblationMerging(b *testing.B) {
	env, _, _ := benchEnvs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = exp.MergeAblation(env)
	}
}

func BenchmarkAblationCorrIdx(b *testing.B) {
	s := exp.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.CorrIdxAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDeploy(b *testing.B) {
	s := exp.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.DeployAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAdapt(b *testing.B) {
	s := exp.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.AdaptAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChaos(b *testing.B) {
	s := exp.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.ChaosAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationServing(b *testing.B) {
	s := exp.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.ServingLatency(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCalib(b *testing.B) {
	s := exp.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.AdaptCalibration(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTenant(b *testing.B) {
	s := exp.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.TenantAblation(s); err != nil {
			b.Fatal(err)
		}
	}
}
