// Command coradd runs the CORADD designer end to end on a built-in
// benchmark, prints the recommended design — MVs with clustered keys, fact
// re-clustering, correlation maps — and measures it against the commercial
// and naive baselines on the simulated substrate.
//
// Usage:
//
//	coradd [-workload ssb|ssb52|apb] [-rows n] [-budget multiple]
//	       [-feedback n] [-baselines]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"coradd/internal/apb"
	"coradd/internal/candgen"
	"coradd/internal/designer"
	"coradd/internal/feedback"
	"coradd/internal/query"
	"coradd/internal/ssb"
	"coradd/internal/stats"
	"coradd/internal/storage"
)

func main() {
	workload := flag.String("workload", "ssb", "ssb | ssb52 | apb")
	rows := flag.Int("rows", 100_000, "fact table rows")
	budgetMult := flag.Float64("budget", 4, "space budget as a multiple of the fact heap size")
	fbIters := flag.Int("feedback", 2, "ILP feedback iterations (-1 disables feedback)")
	baselines := flag.Bool("baselines", true, "also run the Commercial and Naive baselines")
	emitDDL := flag.Bool("ddl", false, "print the design as CREATE statements")
	jsonPath := flag.String("json", "", "write the design as JSON to this file")
	sample := flag.Int("sample", 4096, "statistics synopsis size")
	seed := flag.Int64("seed", 42, "data generation seed")
	flag.Parse()

	var rel *storage.Relation
	var w query.Workload
	var pk []int
	switch strings.ToLower(*workload) {
	case "ssb":
		rel = ssb.Generate(ssb.Config{Rows: *rows, Customers: *rows / 30, Suppliers: *rows / 400, Parts: *rows / 40, Seed: *seed})
		w = ssb.Queries()
		pk = ssb.PKCols(rel.Schema)
	case "ssb52":
		rel = ssb.Generate(ssb.Config{Rows: *rows, Customers: *rows / 30, Suppliers: *rows / 400, Parts: *rows / 40, Seed: *seed})
		w = ssb.AugmentedQueries()
		pk = ssb.PKCols(rel.Schema)
	case "apb":
		rel = apb.Generate(apb.Config{Rows: *rows, Seed: *seed})
		w = apb.Queries()
		pk = apb.PKCols(rel.Schema)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}

	st := stats.New(rel, *sample, *seed+1)
	disk := storage.DefaultDiskParams()
	common := designer.Common{St: st, W: w, Disk: disk, PKCols: pk, BaseKey: rel.ClusterKey}
	budget := int64(*budgetMult * float64(rel.HeapBytes()))

	fmt.Printf("fact table: %s, %d rows, %d pages (%.1f MB heap)\n",
		rel.Name, rel.NumRows(), rel.NumPages(), float64(rel.HeapBytes())/(1<<20))
	fmt.Printf("workload: %d queries; budget: %.1f MB\n\n", len(w), float64(budget)/(1<<20))

	coradd := designer.NewCORADD(common, candgen.DefaultConfig(), feedback.Config{MaxIters: *fbIters})
	design, err := coradd.Design(budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printDesign(rel, design, w)
	if *emitDDL {
		fmt.Println(design.DDL(rel.Schema))
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := design.WriteJSON(f, rel.Schema, w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("design written to %s\n", *jsonPath)
	}

	ev := designer.NewEvaluator(rel, w, disk)
	res, err := ev.Measure(design)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("CORADD:      expected %.3fs   measured %.3fs\n", design.TotalExpected(w), res.Total)

	if *baselines {
		commercial := designer.NewCommercial(common, candgen.DefaultConfig())
		ev.Commercial = commercial
		dm, err := commercial.Design(budget)
		if err == nil {
			if rm, err := ev.Measure(dm); err == nil {
				fmt.Printf("Commercial:  expected %.3fs   measured %.3fs   (CORADD speedup %.2fx)\n",
					dm.TotalExpected(w), rm.Total, rm.Total/res.Total)
			}
		}
		naive := designer.NewNaive(common, candgen.DefaultConfig())
		if dn, err := naive.Design(budget); err == nil {
			if rn, err := ev.Measure(dn); err == nil {
				fmt.Printf("Naive:       expected %.3fs   measured %.3fs\n", dn.TotalExpected(w), rn.Total)
			}
		}
	}
}

func printDesign(rel *storage.Relation, d *designer.Design, w query.Workload) {
	fmt.Printf("design (%d objects, %.1f MB):\n", len(d.Chosen), float64(d.Size)/(1<<20))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, md := range d.Chosen {
		kind := "mv"
		if md.FactRecluster {
			kind = "fact-recluster"
		}
		fmt.Fprintf(tw, "  %s\t%s\tcols=%d\tkey=(%s)\n",
			md.Name, kind, len(md.Cols), rel.Schema.ColNames(md.ClusterKey))
	}
	tw.Flush()
	fmt.Println("routing:")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for qi, q := range w {
		target := "base table"
		if r := d.Routing[qi]; r >= 0 {
			target = d.Chosen[r].Name
		}
		fmt.Fprintf(tw, "  %s\t→ %s\t%s\t%.4fs\n", q.Name, target, d.Paths[qi], d.Expected[qi])
	}
	tw.Flush()
	fmt.Println()
}
