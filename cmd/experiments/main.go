// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate and prints them in paper-style
// rows. See EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	experiments [-full] [-chrono] [-run id] [-ssbrows n] [-apbrows n]
//
// where id selects one experiment: table1, fig5, fig6, fig7, fig9, fig10,
// fig11, fig13, fig14, a3, relax, merge, cidx, deploy, adapt, chaos,
// serving, tenant, calib, all (default all).
//
// Flags:
//
//	-full     the larger paper-like scale (slower)
//	-solveprof  with the calib experiment: dump every selection and
//	          scheduling solve's search-progress profile (incumbent
//	          trajectory and bound gap, sampled at deterministic node
//	          ordinals — see ilp.SolveProfile) after the table
//	-chrono   chronologically loaded SSB for every SSB experiment
//	          (orderdate nearly monotone in the orderkey clustering — the
//	          load-order correlation scenario the cidx ablation
//	          introduced; promoted to a first-class switch in PR 4)
//	-ssbrows / -apbrows  fact-table row overrides
//
// Environment knobs (each applies to every experiment this command runs):
//
//	CORADD_SOLVER_WORKERS   parallel exact solves with this many workers
//	                        (deterministic; results identical to the
//	                        sequential default, only wall time changes —
//	                        useful on multi-core hardware, idle on 1-CPU
//	                        runners). A non-negative integer; 0/unset = the
//	                        sequential search. Negative or non-integer
//	                        values are rejected at startup — see
//	                        exp.ParseSolverWorkers.
//	CORADD_SOLVER_MAXNODES  branch-and-bound node cap per exact solve
//	                        (0/unset = the 5M default, negative =
//	                        unlimited — the off-runner escape hatch for
//	                        running the Figure 9/11 mid-budget instances
//	                        to proven optimality alongside -full)
//	CORADD_SOLVER_TIMELIMIT wall-clock deadline per exact solve, as a
//	                        Go duration ("30s", "2m"; unset = none). A
//	                        triggered deadline keeps the solver's best
//	                        incumbent and marks the solve unproven —
//	                        such rows carry a * in the Figure 9/11
//	                        tables. Zero, negative or non-duration
//	                        values are rejected at startup.
//	CORADD_CACHE_BYTES      materialization-cache capacity: a
//	                        non-negative integer byte count (0 =
//	                        unlimited; unset = the 1 GiB default).
//	                        Negative or non-integer values are rejected
//	                        at startup — see designer.ObjectCache.
//	CORADD_TENANT_WORKERS   worker count for the tenant ablation's
//	                        cross-tenant fan-outs (pool mining and the
//	                        dual's per-probe subproblem solves). A
//	                        non-negative integer; 0/unset = one per CPU.
//	                        Results are identical at any setting.
//	                        Negative or non-integer values are rejected
//	                        at startup — see exp.ParseTenantWorkers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coradd/internal/exp"
	"coradd/internal/ilp"
)

func main() {
	full := flag.Bool("full", false, "use the larger paper-like scale (slower)")
	chrono := flag.Bool("chrono", false, "chronologically loaded SSB (load-order correlation scenario)")
	run := flag.String("run", "all", "experiment id: table1,fig5,fig6,fig7,fig9,fig10,fig11,fig13,fig14,a3,relax,merge,cidx,deploy,adapt,chaos,serving,tenant,calib,all")
	ssbRows := flag.Int("ssbrows", 0, "override SSB fact rows")
	apbRows := flag.Int("apbrows", 0, "override APB fact rows")
	optQueries := flag.Int("optqueries", 8, "workload size for the Figure 7 OPT brute force")
	solveProf := flag.Bool("solveprof", false, "dump the solver search profile after the calib experiment")
	flag.Parse()

	scale := exp.QuickScale()
	if *full {
		scale = exp.FullScale()
	}
	if *ssbRows > 0 {
		scale.SSBRows = *ssbRows
	}
	if *apbRows > 0 {
		scale.APBRows = *apbRows
	}
	scale.ChronoSSB = *chrono

	want := func(id string) bool { return *run == "all" || strings.EqualFold(*run, id) }
	out := os.Stdout

	var ssbEnv, ssbAugEnv, apbEnv *exp.Env
	getSSB := func() *exp.Env {
		if ssbEnv == nil {
			ssbEnv = exp.NewSSBEnv(scale, false)
		}
		return ssbEnv
	}
	getSSBAug := func() *exp.Env {
		if ssbAugEnv == nil {
			ssbAugEnv = exp.NewSSBEnv(scale, true)
		}
		return ssbAugEnv
	}
	getAPB := func() *exp.Env {
		if apbEnv == nil {
			apbEnv = exp.NewAPBEnv(scale)
		}
		return apbEnv
	}

	step := func(id string, f func() error) {
		if !want(id) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "(%s finished in %.1fs)\n\n", id, time.Since(start).Seconds())
		// Release this phase's materialized objects: the next experiment
		// rebuilds what it needs, so a full -run all sweep never holds
		// every phase's working set at once.
		for _, env := range []*exp.Env{ssbEnv, ssbAugEnv, apbEnv} {
			if env != nil {
				env.FlushCaches()
			}
		}
	}

	step("table1", func() error {
		_, t1, t2 := exp.SelectivityVectors(getSSB())
		t1.Print(out)
		t2.Print(out)
		return nil
	})
	step("fig5", func() error {
		_, t := exp.ILPVersusGreedy(getSSB())
		t.Print(out)
		return nil
	})
	step("fig6", func() error {
		sizes := []int{1000, 2500, 5000, 10000, 20000}
		if !*full {
			sizes = []int{1000, 2500, 5000}
		}
		_, t := exp.ILPSolverScaling(sizes, 52, scale.Seed)
		t.Print(out)
		return nil
	})
	step("fig7", func() error {
		_, t, err := exp.FeedbackVersusOPT(getSSB(), *optQueries)
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("fig9", func() error {
		_, t, err := exp.APBComparison(getAPB())
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("fig10", func() error {
		_, t := exp.CostModelError(getSSB())
		t.Print(out)
		return nil
	})
	step("fig11", func() error {
		_, t, err := exp.SSBComparison(getSSBAug())
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("fig13", func() error {
		_, t := exp.AccessPatternGap(getSSB())
		t.Print(out)
		return nil
	})
	step("fig14", func() error {
		_, t := exp.MaintenanceCost(exp.DefaultMaintenanceConfig())
		t.Print(out)
		return nil
	})
	step("a3", func() error {
		_, t := exp.UpdateCostCMvsBTree(exp.DefaultUpdateCostConfig())
		t.Print(out)
		return nil
	})
	step("relax", func() error {
		_, t := exp.RelaxationError(getSSB(), 40)
		t.Print(out)
		return nil
	})
	step("merge", func() error {
		_, t := exp.MergeAblation(getSSB())
		t.Print(out)
		return nil
	})
	step("cidx", func() error {
		_, t, err := exp.CorrIdxAblation(scale)
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("deploy", func() error {
		_, t, err := exp.DeployAblation(scale)
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("adapt", func() error {
		_, t, err := exp.AdaptAblation(scale)
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("chaos", func() error {
		_, t, err := exp.ChaosAblation(scale)
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("serving", func() error {
		_, t, err := exp.ServingLatency(scale)
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("tenant", func() error {
		_, t, err := exp.TenantAblation(scale)
		if err != nil {
			return err
		}
		t.Print(out)
		return nil
	})
	step("calib", func() error {
		var prof *ilp.SolveProfile
		if *solveProf {
			prof = &ilp.SolveProfile{Label: "calib"}
		}
		_, t, err := exp.AdaptCalibration(scale, prof)
		if err != nil {
			return err
		}
		t.Print(out)
		if prof != nil {
			fmt.Fprintln(out, prof.String())
		}
		return nil
	})
}
