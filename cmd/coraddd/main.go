// Command coraddd is the durable CORADD serving daemon: a long-running
// HTTP process that executes workload queries against the currently
// deployed design while the adaptive controller (internal/adapt) watches
// the observed stream for drift and migrates the design underneath —
// queries never block on a solve or a build.
//
// Usage:
//
//	coraddd [-addr :8372] [-checkpoint path] [-rows n] [-budget mult]
//	        [-rate qps] [-burst n] [-req-timeout d] [-drain d]
//	        [-halflife s] [-checkevery n] [-crash-after-builds 1,3]
//	        [-pprof]
//
// Endpoints:
//
//	POST /query    execute a query: a JSON query document, or
//	               {"name":"Q2.1"} referencing the SSB catalog
//	GET  /design   the currently serving design (objects by structural key)
//	GET  /explain  plan attribution for one catalog template
//	               (?template=Q2.1): the design object and access path
//	               serving it, rows scanned vs returned, and the cost
//	               model's estimate against the measured seconds
//	GET  /statusz  controller and serving counters, the tail of the
//	               structured event trace (drift checks, solves, builds),
//	               the top objects by measured benefit and the worst-
//	               calibrated templates
//	GET  /metrics  Prometheus text exposition: per-route request-latency
//	               histograms, shed/timeout/panic counters, controller and
//	               solver telemetry (including per-object serve counters
//	               and the solve-gap gauge), ObjectCache stats
//	GET  /healthz  liveness (the process is up)
//	GET  /readyz   readiness (503 while starting, resuming or draining)
//	GET  /debug/pprof/  net/http/pprof, only with -pprof
//
// Observability: /metrics is always on (the registry costs atomic
// upticks); scrape it with any Prometheus-compatible collector — the
// shed/timeout/drop counters are monotonic, so rate() works across
// scrapes. pprof is opt-in via -pprof because profiling endpoints expose
// stacks and heap contents on the serving port.
//
// Durability: with -checkpoint, the daemon persists the controller's
// crash-state (active design, in-flight migration journal, monitor
// snapshot) through internal/durable on every structural change —
// write-temp-fsync-rename plus a checksum, so a kill at any instant
// leaves a loadable file. A restarted daemon finding the file resumes
// the interrupted migration from the journaled prefix and reports
// resumed=true on /readyz; a corrupt or version-incompatible file stops
// the daemon loudly (exit 2) instead of silently restarting cold.
//
// Degradation: requests beyond -rate queries/second are shed with 503 +
// Retry-After (admitted requests keep bounded latency); handlers past
// -req-timeout return 504; handler panics become 500s. SIGTERM drains
// in-flight queries under the -drain deadline, writes a final
// checkpoint, and exits 0.
//
// -crash-after-builds injects deterministic kills: after the k-th
// migration build completes and journals, the daemon checkpoints and
// exits with code 3 — the hook the restart property tests (and
// examples/serve_loop) drive.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"coradd/internal/adapt"
	"coradd/internal/designer"
	"coradd/internal/durable"
	"coradd/internal/exp"
	"coradd/internal/fault"
	"coradd/internal/feedback"
	"coradd/internal/obs"
	"coradd/internal/server"
	"coradd/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	checkpoint := flag.String("checkpoint", "", "checkpoint file path (empty = no durability)")
	rows := flag.Int("rows", 20_000, "SSB fact rows to generate")
	budget := flag.Float64("budget", 2, "space budget as a multiple of the fact heap")
	rate := flag.Float64("rate", 0, "admission rate for /query in requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 16, "admission token bucket depth")
	reqTimeout := flag.Duration("req-timeout", 5*time.Second, "per-request handler deadline (0 = none)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain deadline")
	halfLife := flag.Float64("halflife", 1e9, "monitor EWMA half-life in simulated seconds")
	checkEvery := flag.Int("checkevery", 13, "drift-check cadence in observations")
	minObserved := flag.Int("minobserved", 13, "observations before drift detection engages")
	crashAfter := flag.String("crash-after-builds", "", "comma-separated completed-build ordinals to crash after (testing hook)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes stacks and heap contents)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"coraddd: durable CORADD serving daemon\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(),
			"\nSee examples/serve_loop for a load generator that kills the daemon\nmid-migration and verifies the resumed design matches.\n")
	}
	flag.Parse()

	logger := log.New(os.Stderr, "coraddd ", log.LstdFlags|log.Lmsgprefix)

	var inj *fault.Injector
	if *crashAfter != "" {
		ordinals, err := parseOrdinals(*crashAfter)
		if err != nil {
			logger.Fatalf("-crash-after-builds: %v", err)
		}
		inj = fault.New(fault.Config{CrashAfterBuilds: ordinals})
	}

	scale := exp.QuickScale()
	scale.SSBRows = *rows

	srv := server.NewStarting(server.Config{
		CheckpointPath: *checkpoint,
		RateLimit:      *rate,
		Burst:          *burst,
		RequestTimeout: *reqTimeout,
		Log:            logger,
		Metrics:        obs.NewRegistry(),
		Trace:          obs.NewTracer(obs.DefaultTraceEvents),
		Pprof:          *pprofOn,
		Adapt: adapt.Config{
			Cand: scale.Cand,
			FB:   feedback.Config{MaxIters: 1},
			Monitor: workload.Config{
				HalfLife:      *halfLife,
				MinObserved:   *minObserved,
				DistThreshold: 0.2,
			},
			CheckEvery: *checkEvery,
			Faults:     inj,
		},
	})

	// The daemon exits on an injected crash only after the loop has
	// written the crash checkpoint — a deterministic "kill at build
	// ordinal k" without SIGKILL timing races.
	httpSrv := &http.Server{Handler: srv.Handler()}
	// No httpSrv.Close() first: closing would race exit — Serve returns
	// ErrServerClosed into main's fatal path before os.Exit(3) runs, and
	// the process would report exit 1 instead of the crash code.
	srv.SetOnCrash(func(err error) {
		logger.Printf("crash injected: %v — exiting 3", err)
		os.Exit(3)
	})

	// Listen before the heavy boot: probes answer immediately (liveness
	// 200, readiness 503 "starting") while data generation and the
	// initial solve run.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	logger.Printf("listening on %s", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if err := boot(srv, scale, *budget, *checkpoint, logger); err != nil {
		logger.Printf("boot: %v", err)
		httpSrv.Close()
		if errors.Is(err, durable.ErrCorrupt) || errors.Is(err, durable.ErrVersion) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	logger.Printf("serving (checkpoint=%q)", *checkpoint)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		logger.Printf("%v: draining (deadline %s)", s, *drain)
	case err := <-serveErr:
		logger.Fatalf("http server: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained; final checkpoint written")
}

// boot generates the environment, then either resumes from a checkpoint
// or solves the initial design cold, and starts the controller loop.
func boot(srv *server.Server, scale exp.Scale, budgetMult float64, ckptPath string, logger *log.Logger) error {
	start := time.Now()
	env := exp.NewSSBEnv(scale, false)
	logger.Printf("generated SSB (%d rows, %d catalog queries) in %s",
		scale.SSBRows, len(env.W), time.Since(start).Round(time.Millisecond))
	budget := int64(budgetMult * float64(env.Rel.HeapBytes()))
	srv.SetAdaptBudget(budget)

	if ckptPath != "" {
		cp, err := durable.Load(ckptPath)
		switch {
		case err == nil:
			ctl, err := cp.Controller(env.Common, srv.AdaptConfig())
			if err != nil {
				return fmt.Errorf("resuming from %s: %w", ckptPath, err)
			}
			logger.Printf("resumed from %s: design %s, migrating=%v",
				ckptPath, ctl.Incumbent().Name, ctl.Migrating())
			srv.AttachResumed(env.Common, ctl)
			return srv.Start()
		case errors.Is(err, os.ErrNotExist):
			logger.Printf("no checkpoint at %s: cold start", ckptPath)
		default:
			// Corrupt or version-incompatible: stop loudly. Guessing here
			// would silently discard a resumable migration.
			return err
		}
	}

	des := designer.NewCORADD(env.Common, scale.Cand, feedback.Config{MaxIters: 1})
	initial, err := des.Design(budget)
	if err != nil {
		return fmt.Errorf("initial design: %w", err)
	}
	logger.Printf("initial design %s (%d objects, %d bytes) in %s",
		initial.Name, len(initial.Chosen), initial.Size, time.Since(start).Round(time.Millisecond))

	ctl, err := adapt.New(env.Common, initial, srv.AdaptConfig())
	if err != nil {
		return err
	}
	srv.Attach(env.Common, ctl)
	return srv.Start()
}

// parseOrdinals parses a comma-separated list of positive build ordinals.
func parseOrdinals(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.Atoi(part)
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("%q is not a positive build ordinal", part)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, errors.New("no ordinals given")
	}
	return out, nil
}
