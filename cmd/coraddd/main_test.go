package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"coradd/internal/query"
	"coradd/internal/ssb"
)

// The restart property, across a REAL process boundary: a daemon killed
// after every build ordinal k of an adaptive migration (exit 3 via
// -crash-after-builds) and restarted against its checkpoint must replay
// the interrupted migration's identical cumulative build sequence and
// land on its identical deployed design, compared against a daemon that
// was never killed. This is the process-level twin of internal/durable's
// TestCrashCheckpointResumeProperty — same scope, too: the property is
// per interrupted migration. Redesigns AFTER the resumed migration may
// legitimately differ from the reference run (the crash abandons the
// remainder of the observation that was in flight, so later drift checks
// see a slightly different monitor state); the in-process property makes
// the same choice, driving each resumed controller only until its
// migration completes.

// daemon wraps one coraddd process under test.
type daemon struct {
	cmd  *exec.Cmd
	url  string
	exit chan error // receives cmd.Wait exactly once
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "coraddd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building coraddd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary on an ephemeral port, parses the
// listen address from its log, and waits for readiness.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-rows", "6000"}, args...)...)
	// Same solver-node cap as the internal/server and internal/durable
	// test envs: at this scale the search proves identical optima within
	// 200k nodes, ~5x faster, keeping dozens of daemon lives affordable.
	cmd.Env = append(os.Environ(), "CORADD_SOLVER_MAXNODES=200000")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, exit: make(chan error, 1)}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addr <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	go func() { d.exit <- cmd.Wait() }()
	select {
	case a := <-addr:
		d.url = "http://" + a
	case err := <-d.exit:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never reported its listen address")
	}
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		select {
		case err := <-d.exit:
			t.Fatalf("daemon exited during boot: %v", err)
		case <-time.After(50 * time.Millisecond):
		}
	}
	cmd.Process.Kill()
	t.Fatal("daemon never became ready")
	return nil
}

// exitCode waits for the process to die and returns its exit code.
func (d *daemon) exitCode(t *testing.T) int {
	t.Helper()
	select {
	case err := <-d.exit:
		if err == nil {
			return 0
		}
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			return ee.ExitCode()
		}
		t.Fatalf("daemon wait: %v", err)
	case <-time.After(2 * time.Minute):
		d.cmd.Process.Kill()
		t.Fatal("daemon did not exit")
	}
	return -1
}

// status is the subset of /statusz the property reads.
type status struct {
	Observed  int64    `json:"observed"`
	Design    string   `json:"design"`
	Deployed  string   `json:"deployed"`
	Migrating bool     `json:"migrating"`
	Builds    []string `json:"builds"`
}

func (d *daemon) status() (*status, error) {
	resp, err := http.Get(d.url + "/statusz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// designKeys fetches the deployed design's structural keys via /design.
func (d *daemon) designKeys(t *testing.T) []string {
	t.Helper()
	resp, err := http.Get(d.url + "/design")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Objects []struct {
			Key string `json:"key"`
		} `json:"objects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(doc.Objects))
	for i, o := range doc.Objects {
		keys[i] = o.Key
	}
	sort.Strings(keys)
	return keys
}

// tracker accumulates the cumulative build sequence across status
// samples (and across process lives): /statusz reports the current
// journal's completed builds, so growth appends and a reset (new
// migration) appends from scratch.
type tracker struct {
	events []string
	prev   []string
}

func (tr *tracker) observe(builds []string) {
	ext := len(builds) >= len(tr.prev)
	if ext {
		for i := range tr.prev {
			if tr.prev[i] != builds[i] {
				ext = false
				break
			}
		}
	}
	if ext {
		tr.events = append(tr.events, builds[len(tr.prev):]...)
	} else {
		tr.events = append(tr.events, builds...)
	}
	tr.prev = append([]string(nil), builds...)
}

// migDone snapshots the daemon's state at the completion of one
// migration: the cumulative build sequence up to and including it, plus
// the design that serves from that point.
type migDone struct {
	events   []string
	deployed string
	keys     []string
}

// drive sends stream[from:] one query at a time, waiting after each for
// the controller to consume the observation so the adaptive timeline is
// deterministic, and feeding every status sample to the tracker. When
// dones is non-nil, a Migrating true→false transition records a migDone
// snapshot. If the daemon dies mid-stream (injected crash) it returns
// the index of the first UNCONSUMED event and alive=false.
func drive(t *testing.T, d *daemon, tr *tracker, stream []*query.Query, from int, dones *[]migDone) (next int, alive bool) {
	t.Helper()
	var consumed int64
	prevMig := false
	for i := from; i < len(stream); i++ {
		body, err := json.Marshal(stream[i])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(d.url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			// Connection refused: the daemon died before consuming event i.
			return i, false
		}
		if resp.StatusCode != http.StatusOK {
			b := new(bytes.Buffer)
			b.ReadFrom(resp.Body)
			resp.Body.Close()
			t.Fatalf("event %d: status %d: %s", i+1, resp.StatusCode, b.String())
		}
		resp.Body.Close()
		consumed++
		for {
			st, err := d.status()
			if err != nil {
				// The daemon crashed while processing event i — the
				// observation was consumed (the crash checkpoint includes
				// its effects), so the resumed life continues at i+1.
				return i + 1, false
			}
			tr.observe(st.Builds)
			if dones != nil && prevMig && !st.Migrating {
				*dones = append(*dones, migDone{
					events:   append([]string(nil), tr.events...),
					deployed: st.Deployed,
					keys:     d.designKeys(t),
				})
			}
			prevMig = st.Migrating
			if st.Observed >= consumed {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	return len(stream), true
}

// driveUntilIdle sends stream[from:] one event at a time until the
// in-flight migration completes (the post-event status shows
// Migrating=false), feeding the tracker throughout. The stream running
// out with the migration still in flight is fatal.
func driveUntilIdle(t *testing.T, d *daemon, tr *tracker, stream []*query.Query, from int) {
	t.Helper()
	var consumed int64
	for i := from; i < len(stream); i++ {
		body, err := json.Marshal(stream[i])
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(d.url+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("resumed daemon died at event %d: %v", i+1, err)
		}
		if resp.StatusCode != http.StatusOK {
			b := new(bytes.Buffer)
			b.ReadFrom(resp.Body)
			resp.Body.Close()
			t.Fatalf("event %d: status %d: %s", i+1, resp.StatusCode, b.String())
		}
		resp.Body.Close()
		consumed++
		for {
			st, err := d.status()
			if err != nil {
				t.Fatalf("resumed daemon died at event %d: %v", i+1, err)
			}
			tr.observe(st.Builds)
			if st.Observed >= consumed {
				if !st.Migrating {
					return
				}
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	t.Fatal("stream exhausted with the resumed migration still in flight")
}

// sigterm drains the daemon gracefully and requires exit 0.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.exitCode(t); code != 0 {
		t.Fatalf("SIGTERM drain exited %d, want 0", code)
	}
}

// driftStream is the base→augmented query mix that drives the daemon
// through a migration, sent as full query documents.
func driftStream() []*query.Query {
	base := ssb.Queries()
	aug := ssb.AugmentedQueries()
	var out []*query.Query
	for i := 0; i < 39; i++ {
		out = append(out, base[i%len(base)])
	}
	for i := 0; i < 156; i++ {
		out = append(out, aug[i%len(aug)])
	}
	return out
}

func TestRestartPropertyAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute multi-process property test")
	}
	bin := buildDaemon(t)
	stream := driftStream()

	// Reference: one uninterrupted life (checkpointing all along), drained
	// with SIGTERM, recording a snapshot at every migration completion.
	refDir := t.TempDir()
	ref := startDaemon(t, bin, "-checkpoint", filepath.Join(refDir, "cp"))
	refTr := &tracker{}
	var refDones []migDone
	if next, alive := drive(t, ref, refTr, stream, 0, &refDones); !alive || next != len(stream) {
		t.Fatalf("reference daemon died at event %d", next)
	}
	ref.sigterm(t)
	if len(refDones) == 0 {
		t.Fatal("reference run completed no migration — the property has nothing to kill at")
	}
	// Ordinals inside a migration the stream never finishes have no
	// reference completion state to compare against; the kill points are
	// the builds of the completed migrations.
	total := len(refDones[len(refDones)-1].events)
	t.Logf("reference: %d completed migrations, %d kill ordinals %v",
		len(refDones), total, refDones[len(refDones)-1].events)

	// Property: kill after every build ordinal, restart, drive the resumed
	// migration to completion, compare against the reference's state at
	// that same migration's completion.
	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-after-build-%d", k), func(t *testing.T) {
			var want migDone
			for _, md := range refDones {
				if len(md.events) >= k {
					want = md
					break
				}
			}

			dir := t.TempDir()
			ckpt := filepath.Join(dir, "cp")
			tr := &tracker{}

			d1 := startDaemon(t, bin, "-checkpoint", ckpt, "-crash-after-builds", fmt.Sprint(k))
			next, alive := drive(t, d1, tr, stream, 0, nil)
			if alive {
				t.Fatalf("daemon survived the whole stream; crash at build %d never fired", k)
			}
			if code := d1.exitCode(t); code != 3 {
				t.Fatalf("crashed daemon exited %d, want 3", code)
			}

			d2 := startDaemon(t, bin, "-checkpoint", ckpt)
			resp, err := http.Get(d2.url + "/readyz")
			if err != nil {
				t.Fatal(err)
			}
			var ready struct {
				Resumed bool `json:"resumed"`
			}
			json.NewDecoder(resp.Body).Decode(&ready)
			resp.Body.Close()
			if !ready.Resumed {
				t.Error("restarted daemon does not report resumed=true")
			}
			// The resumed journal carries builds the crashed life never
			// exposed over HTTP (it dies before the post-build status is
			// observable); fold them into the cumulative sequence first.
			st, err := d2.status()
			if err != nil {
				t.Fatal(err)
			}
			tr.observe(st.Builds)
			finalUnobservable := false
			if st.Migrating {
				driveUntilIdle(t, d2, tr, stream, next)
			} else {
				// Build k was the migration's last: the controller finished
				// the migration before the injected crash surfaced, so the
				// crash checkpoint is idle and carries no journal — the
				// resumed daemon cannot expose build k itself. Its effect is
				// still fully checked below through the deployed design.
				finalUnobservable = true
			}
			st2, err := d2.status()
			if err != nil {
				t.Fatal(err)
			}
			keys := d2.designKeys(t)
			d2.sigterm(t)

			wantEvents := want.events
			if finalUnobservable {
				wantEvents = wantEvents[:len(wantEvents)-1]
			}
			if !reflect.DeepEqual(tr.events, wantEvents) {
				t.Errorf("build sequence diverged:\n  kill@%d: %v\n  reference: %v", k, tr.events, wantEvents)
			}
			if st2.Deployed != want.deployed {
				t.Errorf("deployed design %s, reference %s", st2.Deployed, want.deployed)
			}
			if !reflect.DeepEqual(keys, want.keys) {
				t.Errorf("deployed object keys diverged from the reference run:\n  kill@%d: %v\n  reference: %v", k, keys, want.keys)
			}
		})
	}
}
