# CORADD reproduction — build/test/bench entry points.

N ?= 1

.PHONY: build test race bench bench-guard

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# bench runs every Benchmark* with -benchmem and emits BENCH_$(N).json
# (see DESIGN.md §4 for the experiment index). Override the per-benchmark
# budget with BENCHTIME, e.g. `make bench BENCHTIME=2x` or `=5s`.
bench:
	sh scripts/bench.sh $(N)

# bench-guard reruns the fast benchmarks and fails on a >25% ns/op
# regression against the latest committed BENCH_*.json snapshot.
bench-guard:
	sh scripts/bench_guard.sh
