#!/bin/sh
# bench_guard.sh [pct] — regression guard over the fast benchmarks.
#
# Runs a short -benchtime 1s pass over the four benchmarks that finish in
# seconds (Table1/Table2/Fig5/Fig6), then compares each ns/op against the
# newest committed BENCH_*.json snapshot — which was recorded at the same
# 1s benchtime, so amortization is comparable. Exits 1 if any benchmark
# regressed by more than pct percent (default 25).
#
# Shared-runner timings are noisy — this is a guard against order-of-
# magnitude accidents (an O(n^2) slip, a lost memoization), not a
# microbenchmark harness; CI runs it non-blocking. scripts/bench.sh
# remains the real trajectory recorder.
set -eu

PCT="${1:-25}"
FAST='Table1SelectivityVectors|Table2Propagation|Fig5ILPvsGreedy|Fig6ILPScaling'

# Latest snapshot = highest numeric suffix (mtimes are meaningless after
# a fresh clone). Non-numeric suffixes (BENCH_ci.json) sort first and are
# only picked when no numbered snapshot exists.
BASE="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [ -z "$BASE" ]; then
    echo "bench_guard: no BENCH_*.json baseline found; nothing to guard" >&2
    exit 0
fi
echo "bench_guard: baseline $BASE, threshold +${PCT}%"

TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT
go test -run NONE -bench "$FAST" -benchtime 1s . | tee "$TXT"

awk -v base="$BASE" -v pct="$PCT" '
# Baseline: pull ns_per_op per benchmark name out of the JSON snapshot.
BEGIN {
    while ((getline line < base) > 0) {
        if (line !~ /"name"/) continue
        name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        want[name] = ns + 0
    }
    close(base)
    bad = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    now = $3 + 0
    if (!(name in want)) {
        printf "  %-36s %12.0f ns/op  (no baseline, skipped)\n", name, now
        next
    }
    delta = 100 * (now - want[name]) / want[name]
    verdict = "ok"
    if (delta > pct) { verdict = "REGRESSED"; bad = 1 }
    printf "  %-36s %12.0f ns/op  vs %12.0f  %+7.1f%%  %s\n", \
        name, now, want[name], delta, verdict
}
END {
    if (bad) {
        printf "bench_guard: regression beyond +%s%% — investigate before merging\n", pct
        exit 1
    }
    print "bench_guard: all fast benchmarks within threshold"
}
' "$TXT"
