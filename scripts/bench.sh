#!/bin/sh
# bench.sh [N] — run the benchmark suite with -benchmem and emit BENCH_N.json
# (default N=1) recording ns/op, B/op and allocs/op per benchmark, so the
# repository's performance trajectory is tracked across PRs.
set -eu

N="${1:-1}"
OUT="BENCH_${N}.json"
TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

BENCHTIME="${BENCHTIME:-1s}"

go test -run NONE -bench . -benchmem -benchtime "$BENCHTIME" . | tee "$TXT"

awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    iters = $2
    ns = $3
    bytes = ""; allocs = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line "}"
    lines[n++] = line
}
/^(goos|goarch|pkg|cpu):/ { meta[$1] = $2 }
END {
    printf "{\n" > out
    printf "  \"goos\": \"%s\",\n", meta["goos:"] >> out
    printf "  \"goarch\": \"%s\",\n", meta["goarch:"] >> out
    printf "  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) printf "  %s%s\n", lines[i], (i < n-1 ? "," : "") >> out
    printf "  ]\n}\n" >> out
}
' "$TXT"

echo "wrote $OUT"
