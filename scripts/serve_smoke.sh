#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the durable serving daemon
# (cmd/coraddd): boot it, wait for readiness, execute queries, drain it
# with SIGTERM (final checkpoint), restart it against the same checkpoint
# and require that the restarted daemon (a) reports resumed=true and
# (b) serves the identical design. This is the CI twin of the in-repo
# restart property tests, exercised through a real binary, TCP and
# signals rather than the Go test harness.
set -eu

ADDR=127.0.0.1:8372
URL="http://$ADDR"
DIR=$(mktemp -d)
CKPT="$DIR/coraddd.checkpoint"
BIN="$DIR/coraddd"
trap 'kill $PID 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$BIN" ./cmd/coraddd

wait_ready() {
    i=0
    until curl -fsS "$URL/readyz" >/dev/null 2>&1; do
        i=$((i+1))
        if [ "$i" -gt 600 ]; then
            echo "daemon never became ready" >&2
            exit 1
        fi
        sleep 0.2
    done
}

query() {
    curl -fsS -X POST -d "{\"name\":\"$1\"}" "$URL/query"
}

echo "== life 1: cold start =="
"$BIN" -addr "$ADDR" -rows 4000 -checkpoint "$CKPT" &
PID=$!
wait_ready
curl -fsS "$URL/healthz" | grep -q '"ok":true'
# Execute a few catalog queries; each must price against the design.
for q in Q1.1 Q2.1 Q3.1 Q4.1 Q2.1; do
    query "$q" | grep -q '"seconds"' || { echo "query $q failed" >&2; exit 1; }
done
DESIGN1=$(curl -fsS "$URL/statusz" | sed 's/.*"design":"\([^"]*\)".*/\1/')
echo "serving design: $DESIGN1"

echo "== /explain attribution =="
# The attribution must name a real serving object: either the base table
# or one of the deployed design's objects as listed by /design.
EXPLAIN=$(curl -fsS "$URL/explain?template=Q2.1")
echo "$EXPLAIN" | grep -q '"measured_seconds"' \
    || { echo "/explain missing measurement: $EXPLAIN" >&2; exit 1; }
OBJ=$(echo "$EXPLAIN" | sed 's/.*"object":"\([^"]*\)".*/\1/')
if [ "$OBJ" != "base" ]; then
    # -F: object names embed regex metacharacters (e.g. mv24_q[3 4]).
    curl -fsS "$URL/design" | grep -qF "\"name\":\"$OBJ\"" \
        || { echo "/explain object '$OBJ' not in /design" >&2; exit 1; }
fi
echo "Q2.1 served by: $OBJ"

echo "== /metrics after load =="
# The scrape must be Prometheus text and the request-latency histogram
# must have counted the queries above — non-zero /query samples prove
# the instrumentation path end to end.
METRICS=$(curl -fsS "$URL/metrics")
echo "$METRICS" | grep -q '^# TYPE coradd_http_request_seconds histogram' \
    || { echo "/metrics missing request histogram family" >&2; exit 1; }
QCOUNT=$(echo "$METRICS" | sed -n 's/^coradd_http_request_seconds_count{route="\/query"} //p')
case "$QCOUNT" in
    ''|0) echo "/metrics request histogram empty for /query: '$QCOUNT'" >&2; exit 1;;
esac
echo "$METRICS" | grep -q '^coradd_server_served_total [1-9]' \
    || { echo "/metrics served counter did not move" >&2; exit 1; }
echo "request histogram count for /query: $QCOUNT"
# pprof must be absent without -pprof.
if curl -fsS "$URL/debug/pprof/" >/dev/null 2>&1; then
    echo "/debug/pprof/ mounted without -pprof" >&2; exit 1
fi

echo "== SIGTERM drain =="
kill -TERM $PID
wait $PID || { echo "drain exited non-zero" >&2; exit 1; }
test -f "$CKPT" || { echo "no checkpoint written at drain" >&2; exit 1; }

echo "== life 2: restart from checkpoint =="
"$BIN" -addr "$ADDR" -rows 4000 -checkpoint "$CKPT" &
PID=$!
wait_ready
READY=$(curl -fsS "$URL/readyz")
echo "$READY" | grep -q '"resumed":true' || { echo "restart did not resume: $READY" >&2; exit 1; }
DESIGN2=$(curl -fsS "$URL/statusz" | sed 's/.*"design":"\([^"]*\)".*/\1/')
if [ "$DESIGN1" != "$DESIGN2" ]; then
    echo "resumed design '$DESIGN2' != drained design '$DESIGN1'" >&2
    exit 1
fi
query Q2.1 | grep -q '"seconds"' || { echo "resumed daemon cannot serve" >&2; exit 1; }

kill -TERM $PID
wait $PID || { echo "second drain exited non-zero" >&2; exit 1; }
echo "serve smoke OK: resumed design $DESIGN2 matches"
