module coradd

go 1.24
